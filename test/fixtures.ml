(* Shared test fixtures: the appendix's running example and qcheck
   generators for random relational objects. *)

open Relational
open Logic

let v x = Term.Var x

let c x = Term.Cst x

(* --- the appendix example --------------------------------------------- *)

(* Source: proj(pname, emp, org); target: task(pname, emp, oid),
   org(oid, oname). Reconstructed so that every number in the appendix's
   worked table is reproduced exactly. *)

let source_schema =
  Schema.of_relations [ Relation.make "proj" [ "pname"; "emp"; "org" ] ]

let target_schema =
  Schema.of_relations
    [
      Relation.make "task" [ "pname"; "emp"; "oid" ];
      Relation.make "org" [ "oid"; "oname" ];
    ]

let instance_i =
  Instance.of_tuples
    [
      Tuple.of_consts "proj" [ "BigData"; "Bob"; "IBM" ];
      Tuple.of_consts "proj" [ "ML"; "Alice"; "SAP" ];
    ]

let instance_j =
  Instance.of_tuples
    [
      Tuple.of_consts "task" [ "ML"; "Alice"; "111" ];
      Tuple.of_consts "org" [ "111"; "SAP" ];
      Tuple.of_consts "task" [ "Social"; "Carl"; "222" ];
      Tuple.of_consts "org" [ "222"; "MSR" ];
    ]

let theta1 =
  Tgd.make ~label:"theta1"
    ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
    ~head:[ Atom.make "task" [ v "P"; v "E"; v "T" ] ]
    ()

let theta3 =
  Tgd.make ~label:"theta3"
    ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
    ~head:
      [
        Atom.make "task" [ v "P"; v "E"; v "T" ];
        Atom.make "org" [ v "T"; v "O" ];
      ]
    ()

(* The appendix's extension: [n] extra ML-like projects, i.e. pairs
   proj(Xi, Alice, SAP) in I and task(Xi, Alice, 111) in J. With n >= 5 the
   preferred mapping flips from {} to {theta3}. *)
let extended_example n =
  let name i = Printf.sprintf "Proj%d" i in
  let i' =
    List.fold_left
      (fun acc k ->
        Instance.add (Tuple.of_consts "proj" [ name k; "Alice"; "SAP" ]) acc)
      instance_i
      (List.init n (fun k -> k))
  in
  let j' =
    List.fold_left
      (fun acc k ->
        Instance.add (Tuple.of_consts "task" [ name k; "Alice"; "111" ]) acc)
      instance_j
      (List.init n (fun k -> k))
  in
  (i', j')

(* --- qcheck generators ------------------------------------------------ *)

let small_value_gen =
  QCheck2.Gen.(map (fun i -> Value.Const (Printf.sprintf "c%d" i)) (int_range 0 5))

let tuple_gen ~rel ~arity =
  QCheck2.Gen.(
    map (fun vs -> Tuple.make rel vs) (list_size (return arity) small_value_gen))

(* A random ground instance over relations r2/2 and r3/3. *)
let instance_gen =
  QCheck2.Gen.(
    let* twos = list_size (int_range 0 8) (tuple_gen ~rel:"r2" ~arity:2) in
    let* threes = list_size (int_range 0 8) (tuple_gen ~rel:"r3" ~arity:3) in
    return (Instance.of_tuples (twos @ threes)))

(* Like {!small_value_gen} but a third of the values are labeled nulls, as
   in a chased target instance. *)
let nullable_value_gen =
  QCheck2.Gen.(
    let* k = int_range 0 8 in
    let* null = int_range 0 2 in
    return (if null = 0 then Value.Null k else Value.Const (Printf.sprintf "c%d" k)))

let nullable_tuple_gen ~rel ~arity =
  QCheck2.Gen.(
    map (fun vs -> Tuple.make rel vs) (list_size (return arity) nullable_value_gen))

(* A random instance over r2/2 and r3/3 containing labeled nulls. *)
let nullable_instance_gen =
  QCheck2.Gen.(
    let* twos = list_size (int_range 0 8) (nullable_tuple_gen ~rel:"r2" ~arity:2) in
    let* threes =
      list_size (int_range 0 8) (nullable_tuple_gen ~rel:"r3" ~arity:3)
    in
    return (Instance.of_tuples (twos @ threes)))

(* A pool of six candidate tgds over the appendix vocabulary; random
   selection problems are built by sampling instances and a subset of this
   pool. Shared by the solver property tests and the incremental-evaluator
   differential suite. *)
let selection_candidate_pool =
  [
    theta1;
    theta3;
    Tgd.make ~label:"org_only"
      ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
      ~head:[ Atom.make "org" [ v "T"; v "O" ] ]
      ();
    Tgd.make ~label:"swap"
      ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
      ~head:[ Atom.make "task" [ v "E"; v "P"; v "T" ] ]
      ();
    Tgd.make ~label:"proj_pair"
      ~body:
        [
          Atom.make "proj" [ v "P"; v "E"; v "O" ];
          Atom.make "proj" [ v "P2"; v "E"; v "O2" ];
        ]
      ~head:[ Atom.make "task" [ v "P"; v "E"; v "T" ] ]
      ();
    Tgd.make ~label:"const_head"
      ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
      ~head:[ Atom.make "org" [ v "T"; Term.Cst "SAP" ] ]
      ();
  ]

(* Small random selection problems over the appendix vocabulary. The sizes
   are intentionally tiny (≤ 5 source tuples, ≤ 9 target tuples) so that
   brute force stays cheap and QCheck2's integrated shrinking walks them
   down to minimal counterexamples. *)
let selection_problem_gen =
  let open QCheck2.Gen in
  let mk rel vs = Tuple.of_consts rel vs in
  let source_gen =
    list_size (int_range 1 5)
      (map
         (fun (a, b, c) ->
           mk "proj"
             [ Printf.sprintf "p%d" a; Printf.sprintf "e%d" b; Printf.sprintf "o%d" c ])
         (triple (int_range 0 2) (int_range 0 2) (int_range 0 2)))
    |> map Instance.of_tuples
  in
  let target_gen =
    let* tasks =
      list_size (int_range 0 5)
        (map
           (fun (a, b, c) ->
             mk "task"
               [ Printf.sprintf "p%d" a; Printf.sprintf "e%d" b; Printf.sprintf "i%d" c ])
           (triple (int_range 0 2) (int_range 0 2) (int_range 0 2)))
    in
    let* orgs =
      list_size (int_range 0 4)
        (map
           (fun (a, b) ->
             mk "org" [ Printf.sprintf "i%d" a; Printf.sprintf "o%d" b ])
           (pair (int_range 0 2) (int_range 0 2)))
    in
    return (Instance.of_tuples (tasks @ orgs))
  in
  let* src = source_gen and* j = target_gen in
  let* mask = list_size (return (List.length selection_candidate_pool)) bool in
  let cands = List.filteri (fun i _ -> List.nth mask i) selection_candidate_pool in
  let cands = if cands = [] then [ theta1 ] else cands in
  return (Core.Problem.make ~source:src ~j cands)

(* --- golden solver outputs (pre-incremental-rewrite) ------------------- *)

(* Captured from the naive-evaluator solver implementations immediately
   before Greedy/Local_search/Anneal were rewired onto Core.Incremental.
   The differential regression suite regenerates the same iBench scenarios
   (fixed seeds) and demands that today's solvers return these exact
   selections and objective values. *)

type golden_scenario = {
  g_name : string;
  g_seed : int;
  g_pi_corresp : int;
  g_pi_errors : int;
  g_pi_unexplained : int;
  g_greedy : int list;  (** [Greedy.solve] *)
  g_local : int list;  (** [Local_search.solve ~restarts:2 ~seed:0] *)
  g_anneal : int list;  (** [Anneal.solve] with default options *)
  g_objective : Util.Frac.t;
      (** objective value of all three pinned selections (the solvers agree
          on these scenarios) *)
}

let golden_problem g =
  let s =
    Ibench.Generator.generate
      (Experiments.Common.noise_config ~seed:g.g_seed
         ~pi_corresp:g.g_pi_corresp ~pi_errors:g.g_pi_errors
         ~pi_unexplained:g.g_pi_unexplained ())
  in
  Core.Problem.make ~source:s.Ibench.Scenario.instance_i
    ~j:s.Ibench.Scenario.instance_j s.Ibench.Scenario.candidates

let golden_scenarios =
  [
    {
      g_name = "e1-clean";
      g_seed = 1;
      g_pi_corresp = 0;
      g_pi_errors = 0;
      g_pi_unexplained = 0;
      g_greedy = [ 0; 2; 3; 4; 6; 9 ];
      g_local = [ 0; 2; 3; 4; 6; 9 ];
      g_anneal = [ 0; 2; 3; 4; 6; 9 ];
      g_objective = Util.Frac.make 134 3;
    };
    {
      g_name = "noisy-a";
      g_seed = 2;
      g_pi_corresp = 25;
      g_pi_errors = 25;
      g_pi_unexplained = 10;
      g_greedy = [ 3; 4; 5; 12; 15 ];
      g_local = [ 3; 4; 5; 12; 15 ];
      g_anneal = [ 3; 4; 5; 12; 15 ];
      g_objective = Util.Frac.make 139 2;
    };
    {
      g_name = "noisy-b";
      g_seed = 7;
      g_pi_corresp = 50;
      g_pi_errors = 25;
      g_pi_unexplained = 25;
      g_greedy = [ 2; 5; 8; 15; 16; 19 ];
      g_local = [ 2; 5; 8; 15; 16; 19 ];
      g_anneal = [ 2; 5; 8; 15; 16; 19 ];
      g_objective = Util.Frac.make 292 3;
    };
  ]

(* A random conjunctive query over r2/2 and r3/3 with variables from a small
   pool (shared variables make real joins likely). *)
let cq_gen =
  QCheck2.Gen.(
    let var_pool = [ "X"; "Y"; "Z"; "W" ] in
    let term_gen =
      frequency
        [
          (3, map (fun i -> Term.Var (List.nth var_pool i)) (int_range 0 3));
          (1, map (fun i -> Term.Cst (Printf.sprintf "c%d" i)) (int_range 0 5));
        ]
    in
    let atom_gen =
      let* which = bool in
      if which then
        let* a = term_gen and* b = term_gen in
        return (Atom.make "r2" [ a; b ])
      else
        let* a = term_gen and* b = term_gen and* c = term_gen in
        return (Atom.make "r3" [ a; b; c ])
    in
    list_size (int_range 1 3) atom_gen)
