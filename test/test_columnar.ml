(* The columnar kernel and core-solution suites:

   1. Dict: intern/decode round-trips, codes are dense and injective, and
      the code sequence is a pure function of insertion order;
   2. Column / Columnar: encode-decode identity on adversarial values
      (empty strings, shared prefixes, constants that render like null
      labels, colliding null labels), posting lists and masks agree with
      naive scans;
   3. Bitset: the extended ops (inter_into, iter_set, cardinal) against a
      naive int-set model;
   4. Cq.Columnar: answer and extension lists are *identical* (order
      included) to the indexed row-major evaluator, and the columnar chase
      equals the row-major chase trigger for trigger;
   5. Core_solution: worked examples, ground fixpoints, sub-instance
      containment, two-way homomorphic equivalence, idempotence. *)

open Relational
open Logic
open Util

let inst = Alcotest.testable Instance.pp Instance.equal

(* --- generators --------------------------------------------------------- *)

(* Values chosen to stress the dictionary: the empty string, shared
   prefixes, a constant spelled like a null label, and a handful of null
   labels that repeat across tuples. *)
let adversarial_value_gen =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun s -> Value.Const s)
          (oneofl [ ""; "a"; "aa"; "aaa"; "ab"; "_N0"; "0" ]);
        map (fun i -> Value.Null i) (int_range 0 3);
      ])

let adversarial_instance_gen =
  QCheck2.Gen.(
    let tuple rel arity =
      map (fun vs -> Tuple.make rel vs)
        (list_size (return arity) adversarial_value_gen)
    in
    let* ones = list_size (int_range 0 6) (tuple "p1" 1) in
    let* twos = list_size (int_range 0 8) (tuple "r2" 2) in
    let* threes = list_size (int_range 0 6) (tuple "r3" 3) in
    return (Instance.of_tuples (ones @ twos @ threes)))

(* --- Dict ---------------------------------------------------------------- *)

let dict_qcheck =
  let open QCheck2 in
  let values_gen = Gen.(list_size (int_range 0 40) adversarial_value_gen) in
  [
    Test.make ~name:"intern/decode round-trips and codes are dense" ~count:200
      values_gen (fun values ->
        let d = Dict.create () in
        let codes = List.map (Dict.intern d) values in
        List.for_all2
          (fun v code ->
            code >= 0 && code < Dict.size d
            && Value.equal (Dict.decode d code) v
            && Dict.find_opt d v = Some code)
          values codes);
    Test.make ~name:"code equality is value equality" ~count:200 values_gen
      (fun values ->
        let d = Dict.create () in
        let codes = List.map (Dict.intern d) values in
        List.for_all2
          (fun v c ->
            List.for_all2
              (fun v' c' -> Value.equal v v' = (c = c'))
              values codes)
          values codes);
    Test.make ~name:"code sequence is a pure function of insertion order"
      ~count:200 values_gen (fun values ->
        let d1 = Dict.create () and d2 = Dict.create ~capacity:1 () in
        List.map (Dict.intern d1) values = List.map (Dict.intern d2) values);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let dict_tests =
  [
    Alcotest.test_case "decode of an unknown code raises" `Quick (fun () ->
        let d = Dict.create () in
        ignore (Dict.intern d (Value.Const "x"));
        Alcotest.check_raises "out of range"
          (Invalid_argument "Dict.decode: unknown code") (fun () ->
            ignore (Dict.decode d 1)));
    Alcotest.test_case "null and look-alike constant get distinct codes"
      `Quick (fun () ->
        let d = Dict.create () in
        let c1 = Dict.intern d (Value.Null 0) in
        let c2 = Dict.intern d (Value.Const "_N0") in
        Alcotest.(check bool) "distinct" true (c1 <> c2));
  ]

(* --- Column -------------------------------------------------------------- *)

let column_qcheck =
  let open QCheck2 in
  let data_gen = Gen.(array_size (int_range 0 40) (int_range 0 8)) in
  [
    Test.make ~name:"get reads back the array" ~count:200 data_gen (fun data ->
        let col = Column.of_array data in
        Column.length col = Array.length data
        && Array.for_all
             (fun i -> Column.get col i = data.(i))
             (Array.init (Array.length data) Fun.id));
    Test.make ~name:"rows_with is the descending naive scan" ~count:200
      data_gen (fun data ->
        let col = Column.of_array data in
        List.for_all
          (fun code ->
            let naive =
              List.rev
                (List.filter_map
                   (fun i -> if data.(i) = code then Some i else None)
                   (List.init (Array.length data) Fun.id))
            in
            Column.rows_with col code = naive)
          (List.init 10 Fun.id));
    Test.make ~name:"mask_of is the posting list as a bitset" ~count:200
      data_gen (fun data ->
        let col = Column.of_array data in
        List.for_all
          (fun code ->
            Bitset.to_list (Column.mask_of col code)
            = List.sort compare (Column.rows_with col code))
          (List.init 10 Fun.id));
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* --- Bitset extended ops vs a naive int-set model ------------------------ *)

module Int_set = Set.Make (Int)

let bitset_qcheck =
  let open QCheck2 in
  let sets_gen =
    Gen.(
      let* width = int_range 1 130 in
      let bits = list_size (int_range 0 60) (int_range 0 (width - 1)) in
      let* a = bits and* b = bits in
      return (width, a, b))
  in
  [
    Test.make ~name:"cardinal matches the model" ~count:300 sets_gen
      (fun (width, a, _) ->
        Bitset.cardinal (Bitset.of_list width a)
        = Int_set.cardinal (Int_set.of_list a));
    Test.make ~name:"iter_set visits the model ascending" ~count:300 sets_gen
      (fun (width, a, _) ->
        let seen = ref [] in
        Bitset.iter_set (fun i -> seen := i :: !seen) (Bitset.of_list width a);
        List.rev !seen = Int_set.elements (Int_set.of_list a));
    Test.make ~name:"inter_into is model intersection" ~count:300 sets_gen
      (fun (width, a, b) ->
        let sa = Bitset.of_list width a in
        Bitset.inter_into sa (Bitset.of_list width b);
        Bitset.to_list sa
        = Int_set.elements (Int_set.inter (Int_set.of_list a) (Int_set.of_list b)));
    Test.make ~name:"inter_into then cardinal agrees with to_list" ~count:300
      sets_gen (fun (width, a, b) ->
        let sa = Bitset.of_list width a in
        Bitset.inter_into sa (Bitset.of_list width b);
        Bitset.cardinal sa = List.length (Bitset.to_list sa));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let bitset_tests =
  [
    Alcotest.test_case "inter_into rejects mismatched widths" `Quick (fun () ->
        Alcotest.check_raises "widths"
          (Invalid_argument "Bitset: width mismatch") (fun () ->
            Bitset.inter_into (Bitset.create 8) (Bitset.create 9)));
  ]

(* --- Columnar round trip ------------------------------------------------- *)

let columnar_qcheck =
  let open QCheck2 in
  [
    Test.make ~name:"to_instance (of_instance i) = i on adversarial values"
      ~count:300 adversarial_instance_gen (fun i ->
        Instance.equal (Columnar.to_instance (Columnar.of_instance i)) i);
    Test.make ~name:"round trip on plain generated instances" ~count:200
      Fixtures.nullable_instance_gen (fun i ->
        Instance.equal (Columnar.to_instance (Columnar.of_instance i)) i);
    Test.make ~name:"cardinal survives the conversion" ~count:200
      adversarial_instance_gen (fun i ->
        Columnar.cardinal (Columnar.of_instance i) = Instance.cardinal i);
    Test.make ~name:"store is invariant under tuple permutation" ~count:200
      (Gen.pair adversarial_instance_gen (Gen.int_bound 1000))
      (fun (i, salt) ->
        let rng = Random.State.make [| salt |] in
        let tuples = Array.of_list (Instance.tuples i) in
        for k = Array.length tuples - 1 downto 1 do
          let j = Random.State.int rng (k + 1) in
          let tmp = tuples.(k) in
          tuples.(k) <- tuples.(j);
          tuples.(j) <- tmp
        done;
        let i' = Instance.of_tuples (Array.to_list tuples) in
        Instance.equal
          (Columnar.to_instance (Columnar.of_instance i'))
          (Columnar.to_instance (Columnar.of_instance i)));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let columnar_tests =
  [
    Alcotest.test_case "mixed arity is rejected" `Quick (fun () ->
        let i =
          Instance.of_tuples
            [ Tuple.of_consts "r" [ "a" ]; Tuple.of_consts "r" [ "a"; "b" ] ]
        in
        Alcotest.check_raises "mixed"
          (Invalid_argument "Columnar.of_instance: relation r mixes arities")
          (fun () -> ignore (Columnar.of_instance i)));
    Alcotest.test_case "tuple_of_row decodes canonical rows" `Quick (fun () ->
        (* row ids follow the ascending set order within each relation *)
        let i = Fixtures.instance_j in
        let col = Columnar.of_instance i in
        let decoded =
          List.concat_map
            (fun rel ->
              let tbl = Option.get (Columnar.table col rel) in
              List.init tbl.Columnar.nrows (Columnar.tuple_of_row col tbl rel))
            (Columnar.relations col)
        in
        let expected =
          List.concat_map
            (fun rel -> Tuple.Set.elements (Instance.tuples_of i rel))
            (Instance.relations i)
        in
        Alcotest.(check (list (Alcotest.testable Tuple.pp Tuple.equal)))
          "canonical order" expected decoded);
  ]

(* --- columnar CQ evaluation: identical lists to the indexed evaluator ---- *)

let subst_list_identical a b = List.equal Subst.equal a b

let cq_columnar_qcheck =
  let open QCheck2 in
  [
    Test.make ~name:"columnar answers = indexed answers, order included"
      ~count:300
      (Gen.pair Fixtures.nullable_instance_gen Fixtures.cq_gen)
      (fun (i, q) ->
        let col = Columnar.of_instance i in
        subst_list_identical
          (Cq.answers_indexed (Cq.Index.build i) q)
          (Cq.Columnar.answers col q));
    Test.make ~name:"columnar answers on adversarial dictionaries" ~count:300
      (Gen.pair adversarial_instance_gen Fixtures.cq_gen)
      (fun (i, q) ->
        let col = Columnar.of_instance i in
        subst_list_identical
          (Cq.answers_indexed (Cq.Index.build i) q)
          (Cq.Columnar.answers col q));
    Test.make ~name:"columnar extensions honour the partial substitution"
      ~count:200
      (Gen.pair Fixtures.nullable_instance_gen Fixtures.cq_gen)
      (fun (i, q) ->
        match Instance.tuples i with
        | [] -> true
        | t :: _ ->
          let s = Subst.singleton "X" t.Relational.Tuple.values.(0) in
          subst_list_identical
            (Cq.extensions_indexed (Cq.Index.build i) s q)
            (Cq.Columnar.extensions (Columnar.of_instance i) s q));
    Test.make ~name:"a substitution binding an absent value still agrees"
      ~count:200
      (Gen.pair Fixtures.nullable_instance_gen Fixtures.cq_gen)
      (fun (i, q) ->
        let s = Subst.singleton "X" (Value.Const "never-interned") in
        subst_list_identical
          (Cq.extensions_indexed (Cq.Index.build i) s q)
          (Cq.Columnar.extensions (Columnar.of_instance i) s q));
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* --- columnar chase ------------------------------------------------------ *)

let chase_columnar_tests =
  let results_equal (a : Chase.result) (b : Chase.result) =
    Instance.equal a.Chase.solution b.Chase.solution
    && List.length a.Chase.triggers = List.length b.Chase.triggers
    && List.for_all2
         (fun (x : Chase.Trigger.t) (y : Chase.Trigger.t) ->
           x.Chase.Trigger.tgd_index = y.Chase.Trigger.tgd_index
           && Subst.equal x.Chase.Trigger.subst y.Chase.Trigger.subst
           && List.equal Tuple.equal x.Chase.Trigger.tuples
                y.Chase.Trigger.tuples)
         a.Chase.triggers b.Chase.triggers
  in
  [
    Alcotest.test_case "run_columnar equals run on the paper example" `Quick
      (fun () ->
        let tgds = [ Fixtures.theta1; Fixtures.theta3 ] in
        let r_row = Chase.run Fixtures.instance_i tgds in
        let r_col =
          Chase.run_columnar (Columnar.of_instance Fixtures.instance_i) tgds
        in
        Alcotest.(check bool) "identical" true (results_equal r_row r_col);
        Alcotest.check inst "same solution" r_row.Chase.solution
          r_col.Chase.solution);
    Alcotest.test_case "run_columnar equals run on the extended example"
      `Quick (fun () ->
        let source, _ = Fixtures.extended_example 6 in
        let candidates = [ Fixtures.theta1; Fixtures.theta3 ] in
        let r_row = Chase.run source candidates in
        let r_col = Chase.run_columnar (Columnar.of_instance source) candidates in
        Alcotest.(check bool) "identical" true (results_equal r_row r_col));
  ]

(* --- Core_solution ------------------------------------------------------- *)

let core_tests =
  let t rel vs = Tuple.make rel vs in
  let cst x = Value.Const x and nul i = Value.Null i in
  [
    Alcotest.test_case "redundant null tuple is retracted" `Quick (fun () ->
        (* R(a, N1) maps into R(a, b): the core keeps only the ground tuple *)
        let i =
          Instance.of_tuples
            [ t "r" [ cst "a"; nul 1 ]; t "r" [ cst "a"; cst "b" ] ]
        in
        Alcotest.check inst "core"
          (Instance.of_tuples [ t "r" [ cst "a"; cst "b" ] ])
          (Chase.Core_solution.core i));
    Alcotest.test_case "null-connected component retracts as a whole" `Quick
      (fun () ->
        (* P(a,N1), Q(N1,c) jointly map onto P(a,b), Q(b,c); both go *)
        let ground = [ t "p" [ cst "a"; cst "b" ]; t "q" [ cst "b"; cst "c" ] ] in
        let i =
          Instance.of_tuples
            (t "p" [ cst "a"; nul 1 ] :: t "q" [ nul 1; cst "c" ] :: ground)
        in
        Alcotest.check inst "core" (Instance.of_tuples ground)
          (Chase.Core_solution.core i));
    Alcotest.test_case "a join-carrying null survives" `Quick (fun () ->
        (* P(a,N1), Q(N1,c) with no ground witness: nothing to retract to *)
        let i =
          Instance.of_tuples [ t "p" [ cst "a"; nul 1 ]; t "q" [ nul 1; cst "c" ] ]
        in
        Alcotest.check inst "core" i (Chase.Core_solution.core i);
        Alcotest.(check bool) "is_core" true (Chase.Core_solution.is_core i));
    Alcotest.test_case "ground instances are their own core" `Quick (fun () ->
        Alcotest.check inst "identity" Fixtures.instance_j
          (Chase.Core_solution.core Fixtures.instance_j);
        Alcotest.(check bool)
          "is_core" true
          (Chase.Core_solution.is_core Fixtures.instance_j));
    Alcotest.test_case "nulls collapse onto each other when compatible" `Quick
      (fun () ->
        (* R(a,N1) and R(a,N2) are homomorphically interchangeable; the
           core keeps exactly one of them (the search keeps the first
           surviving tuple in canonical order) *)
        let i =
          Instance.of_tuples [ t "r" [ cst "a"; nul 1 ]; t "r" [ cst "a"; nul 2 ] ]
        in
        let c = Chase.Core_solution.core i in
        Alcotest.(check int) "one tuple" 1 (Instance.cardinal c);
        Alcotest.(check bool) "subset" true (Instance.subset c i));
    Alcotest.test_case "hom_exists fixes constants" `Quick (fun () ->
        let from = Instance.of_tuples [ t "r" [ cst "a" ] ] in
        let into = Instance.of_tuples [ t "r" [ cst "b" ] ] in
        Alcotest.(check bool)
          "no hom" false
          (Chase.Core_solution.hom_exists ~from ~into);
        Alcotest.(check bool)
          "identity hom" true
          (Chase.Core_solution.hom_exists ~from ~into:from));
    Alcotest.test_case "hom_exists maps nulls anywhere" `Quick (fun () ->
        let from = Instance.of_tuples [ t "r" [ nul 1; nul 1 ] ] in
        let into_ok = Instance.of_tuples [ t "r" [ cst "a"; cst "a" ] ] in
        let into_no = Instance.of_tuples [ t "r" [ cst "a"; cst "b" ] ] in
        Alcotest.(check bool)
          "diagonal" true
          (Chase.Core_solution.hom_exists ~from ~into:into_ok);
        Alcotest.(check bool)
          "off-diagonal" false
          (Chase.Core_solution.hom_exists ~from ~into:into_no));
  ]

let core_qcheck =
  let open QCheck2 in
  let small_nullable_gen =
    Gen.(
      let tuple rel arity =
        map
          (fun vs -> Relational.Tuple.make rel vs)
          (list_size (return arity) Fixtures.nullable_value_gen)
      in
      let* twos = list_size (int_range 0 6) (tuple "r2" 2) in
      let* threes = list_size (int_range 0 4) (tuple "r3" 3) in
      return (Instance.of_tuples (twos @ threes)))
  in
  [
    Test.make ~name:"core is a sub-instance and idempotent" ~count:150
      small_nullable_gen (fun i ->
        let c = Chase.Core_solution.core i in
        Instance.subset c i
        && Instance.equal (Chase.Core_solution.core c) c
        && Chase.Core_solution.is_core c);
    Test.make ~name:"core is homomorphically equivalent to the input"
      ~count:100 small_nullable_gen (fun i ->
        let c = Chase.Core_solution.core i in
        Chase.Core_solution.hom_exists ~from:i ~into:c
        && Chase.Core_solution.hom_exists ~from:c ~into:i);
    Test.make ~name:"core retains every ground tuple" ~count:150
      small_nullable_gen (fun i ->
        let c = Chase.Core_solution.core i in
        List.for_all
          (fun t -> (not (Relational.Tuple.is_ground t)) || Instance.mem t c)
          (Instance.tuples i));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "columnar"
    [
      ("dict", dict_tests @ dict_qcheck);
      ("column", column_qcheck);
      ("bitset", bitset_tests @ bitset_qcheck);
      ("columnar", columnar_tests @ columnar_qcheck);
      ("cq-columnar", cq_columnar_qcheck);
      ("chase-columnar", chase_columnar_tests);
      ("core", core_tests @ core_qcheck);
    ]
