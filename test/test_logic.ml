open Relational
open Logic

let v = Fixtures.v

let c = Fixtures.c

(* Brute-force CQ evaluation: try every assignment of query variables to
   values of the active domain plus query constants. *)
let brute_force_answers inst atoms =
  let vars =
    List.fold_left
      (fun acc a -> String_set.union acc (Atom.vars a))
      String_set.empty atoms
    |> String_set.elements
  in
  let domain =
    let from_inst = Value.Set.elements (Instance.constants inst) in
    let from_query =
      List.concat_map
        (fun (a : Atom.t) ->
          Array.to_list a.Atom.args
          |> List.filter_map (function
               | Term.Cst cst -> Some (Value.Const cst)
               | Term.Var _ -> None))
        atoms
    in
    List.sort_uniq Value.compare (from_inst @ from_query)
  in
  let rec assign vars subst acc =
    match vars with
    | [] ->
      let ok =
        List.for_all
          (fun a -> Instance.mem (Subst.apply_atom_exn subst a) inst)
          atoms
      in
      if ok then subst :: acc else acc
    | x :: rest ->
      List.fold_left
        (fun acc d -> assign rest (Subst.bind_exn x d subst) acc)
        acc domain
  in
  assign vars Subst.empty []

let subst_set_equal xs ys =
  let norm l = List.sort_uniq Subst.compare l in
  List.equal Subst.equal (norm xs) (norm ys)

let term_tests =
  [
    Alcotest.test_case "ordering" `Quick (fun () ->
        Alcotest.(check bool)
          "var < cst" true
          (Term.compare (Term.Var "x") (Term.Cst "x") < 0));
    Alcotest.test_case "var_name" `Quick (fun () ->
        Alcotest.(check (option string)) "var" (Some "x") (Term.var_name (v "x"));
        Alcotest.(check (option string)) "cst" None (Term.var_name (c "x")));
  ]

let atom_tests =
  [
    Alcotest.test_case "vars_in_order dedups" `Quick (fun () ->
        let a = Atom.make "r" [ v "X"; v "Y"; v "X"; c "k" ] in
        Alcotest.(check (list string)) "order" [ "X"; "Y" ] (Atom.vars_in_order a));
    Alcotest.test_case "conforms_to" `Quick (fun () ->
        let s = Schema.of_relations [ Relation.make "r" [ "a"; "b" ] ] in
        Alcotest.(check bool)
          "ok" true
          (Atom.conforms_to s (Atom.make "r" [ v "X"; v "Y" ]));
        Alcotest.(check bool)
          "bad arity" false
          (Atom.conforms_to s (Atom.make "r" [ v "X" ]));
        Alcotest.(check bool)
          "unknown rel" false
          (Atom.conforms_to s (Atom.make "q" [ v "X"; v "Y" ])));
  ]

let subst_tests =
  [
    Alcotest.test_case "bind conflict" `Quick (fun () ->
        let s = Subst.singleton "x" (Value.Const "a") in
        Alcotest.(check bool)
          "conflict" true
          (Subst.bind "x" (Value.Const "b") s = None);
        Alcotest.(check bool)
          "same ok" true
          (Subst.bind "x" (Value.Const "a") s <> None));
    Alcotest.test_case "apply_atom" `Quick (fun () ->
        let s = Subst.singleton "x" (Value.Const "a") in
        let t = Subst.apply_atom s (Atom.make "r" [ v "x"; c "k" ]) in
        Alcotest.(check bool)
          "grounded" true
          (match t with
          | Some t -> Tuple.equal t (Tuple.of_consts "r" [ "a"; "k" ])
          | None -> false);
        Alcotest.(check bool)
          "unbound" true
          (Subst.apply_atom s (Atom.make "r" [ v "y" ]) = None));
    Alcotest.test_case "merge" `Quick (fun () ->
        let s1 = Subst.singleton "x" (Value.Const "a") in
        let s2 = Subst.singleton "y" (Value.Const "b") in
        let s3 = Subst.singleton "x" (Value.Const "z") in
        Alcotest.(check bool) "disjoint" true (Subst.merge s1 s2 <> None);
        Alcotest.(check bool) "conflict" true (Subst.merge s1 s3 = None));
  ]

let parent_child_instance =
  Instance.of_tuples
    [
      Tuple.of_consts "r2" [ "a"; "b" ];
      Tuple.of_consts "r2" [ "b"; "c" ];
      Tuple.of_consts "r2" [ "c"; "d" ];
    ]

let cq_tests =
  [
    Alcotest.test_case "empty query has one answer" `Quick (fun () ->
        Alcotest.(check int)
          "one" 1
          (List.length (Cq.answers parent_child_instance [])));
    Alcotest.test_case "path join" `Quick (fun () ->
        (* r2(X,Y), r2(Y,Z): paths of length 2: a-b-c, b-c-d *)
        let q =
          [ Atom.make "r2" [ v "X"; v "Y" ]; Atom.make "r2" [ v "Y"; v "Z" ] ]
        in
        Alcotest.(check int)
          "two paths" 2
          (List.length (Cq.answers parent_child_instance q)));
    Alcotest.test_case "constants filter" `Quick (fun () ->
        let q = [ Atom.make "r2" [ c "a"; v "Y" ] ] in
        match Cq.answers parent_child_instance q with
        | [ s ] ->
          Alcotest.(check bool)
            "Y=b" true
            (Subst.find_opt "Y" s = Some (Value.Const "b"))
        | other ->
          Alcotest.failf "expected one answer, got %d" (List.length other));
    Alcotest.test_case "repeated variable forces equality" `Quick (fun () ->
        let i = Instance.add (Tuple.of_consts "r2" [ "e"; "e" ]) parent_child_instance in
        let q = [ Atom.make "r2" [ v "X"; v "X" ] ] in
        Alcotest.(check int) "one loop" 1 (List.length (Cq.answers i q)));
    Alcotest.test_case "unsatisfiable constant" `Quick (fun () ->
        let q = [ Atom.make "r2" [ c "zz"; v "Y" ] ] in
        Alcotest.(check bool)
          "no answer" true
          (Cq.answers parent_child_instance q = []);
        Alcotest.(check bool) "holds false" false (Cq.holds parent_child_instance q));
    Alcotest.test_case "order_atoms keeps all atoms" `Quick (fun () ->
        let q =
          [
            Atom.make "r2" [ v "X"; v "Y" ];
            Atom.make "r3" [ v "Y"; v "Z"; v "W" ];
            Atom.make "r2" [ v "Z"; c "k" ];
          ]
        in
        Alcotest.(check int) "3 atoms" 3 (List.length (Cq.order_atoms q)));
  ]

let cq_property_tests =
  let open QCheck2 in
  [
    Test.make ~name:"evaluator agrees with brute force" ~count:200
      (Gen.pair Fixtures.instance_gen Fixtures.cq_gen) (fun (inst, q) ->
        subst_set_equal (Cq.answers inst q) (brute_force_answers inst q));
    Test.make ~name:"holds iff answers nonempty" ~count:200
      (Gen.pair Fixtures.instance_gen Fixtures.cq_gen) (fun (inst, q) ->
        Cq.holds inst q = (Cq.answers inst q <> []));
  Test.make ~name:"indexed evaluator agrees with the plain one" ~count:200
      (Gen.pair Fixtures.instance_gen Fixtures.cq_gen) (fun (inst, q) ->
        let index = Cq.Index.build inst in
        subst_set_equal (Cq.answers inst q) (Cq.answers_indexed index q));
    Test.make ~name:"indexed extensions honour the partial substitution"
      ~count:100 (Gen.pair Fixtures.instance_gen Fixtures.cq_gen)
      (fun (inst, q) ->
        let index = Cq.Index.build inst in
        (* bind X to the first constant of the instance, when there is one *)
        match Value.Set.choose_opt (Instance.constants inst) with
        | None -> true
        | Some v ->
          let s = Subst.singleton "X" v in
          subst_set_equal (Cq.extensions inst s q) (Cq.extensions_indexed index s q));
    Test.make ~name:"indexed evaluator agrees on instances with nulls"
      ~count:200 (Gen.pair Fixtures.nullable_instance_gen Fixtures.cq_gen)
      (fun (inst, q) ->
        let index = Cq.Index.build inst in
        subst_set_equal (Cq.answers inst q) (Cq.answers_indexed index q));
    Test.make ~name:"answers_seq enumerates exactly the answers" ~count:200
      (Gen.pair Fixtures.nullable_instance_gen Fixtures.cq_gen)
      (fun (inst, q) ->
        subst_set_equal (Cq.answers inst q) (List.of_seq (Cq.answers_seq inst q)));
    Test.make ~name:"indexed extensions agree on instances with nulls"
      ~count:100 (Gen.pair Fixtures.nullable_instance_gen Fixtures.cq_gen)
      (fun (inst, q) ->
        let index = Cq.Index.build inst in
        (* bind X to some value of the instance — nulls included *)
        match Instance.tuples inst with
        | [] -> true
        | t :: _ ->
          let s = Subst.singleton "X" t.Relational.Tuple.values.(0) in
          subst_set_equal (Cq.extensions inst s q) (Cq.extensions_indexed index s q));
        Test.make ~name:"answers bind exactly the query variables" ~count:200
      (Gen.pair Fixtures.instance_gen Fixtures.cq_gen) (fun (inst, q) ->
        let qvars =
          List.fold_left
            (fun acc a -> String_set.union acc (Atom.vars a))
            String_set.empty q
        in
        List.for_all
          (fun s ->
            List.for_all (fun (x, _) -> String_set.mem x qvars) (Subst.bindings s)
            && Subst.cardinal s = String_set.cardinal qvars)
          (Cq.answers inst q));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let tgd_tests =
  [
    Alcotest.test_case "appendix sizes" `Quick (fun () ->
        Alcotest.(check int) "theta1" 3 (Tgd.size Fixtures.theta1);
        Alcotest.(check int) "theta3" 4 (Tgd.size Fixtures.theta3));
    Alcotest.test_case "full vs existential" `Quick (fun () ->
        Alcotest.(check bool) "theta1 not full" false (Tgd.is_full Fixtures.theta1);
        let full =
          Tgd.make
            ~body:[ Atom.make "r" [ v "X" ] ]
            ~head:[ Atom.make "s" [ v "X" ] ]
            ()
        in
        Alcotest.(check bool) "copy full" true (Tgd.is_full full);
        Alcotest.(check int) "copy size" 2 (Tgd.size full));
    Alcotest.test_case "frontier and existential vars" `Quick (fun () ->
        let fr = Tgd.frontier_vars Fixtures.theta3 in
        let ex = Tgd.existential_vars Fixtures.theta3 in
        Alcotest.(check (list string))
          "frontier" [ "E"; "O"; "P" ] (String_set.elements fr);
        Alcotest.(check (list string)) "existential" [ "T" ] (String_set.elements ex));
    Alcotest.test_case "well_formed" `Quick (fun () ->
        Alcotest.(check bool)
          "theta3 ok" true
          (Tgd.well_formed ~source:Fixtures.source_schema
             ~target:Fixtures.target_schema Fixtures.theta3
          = Ok ());
        let bad =
          Tgd.make
            ~body:[ Atom.make "nosuch" [ v "X" ] ]
            ~head:[ Atom.make "task" [ v "X"; v "X"; v "X" ] ]
            ()
        in
        Alcotest.(check bool)
          "bad rejected" true
          (Tgd.well_formed ~source:Fixtures.source_schema
             ~target:Fixtures.target_schema bad
          <> Ok ()));
    Alcotest.test_case "equal_up_to_renaming" `Quick (fun () ->
        let renamed = Tgd.rename_apart ~suffix:"_1" Fixtures.theta3 in
        Alcotest.(check bool)
          "renamed equal" true
          (Tgd.equal_up_to_renaming Fixtures.theta3 renamed);
        Alcotest.(check bool)
          "different tgds differ" false
          (Tgd.equal_up_to_renaming Fixtures.theta1 Fixtures.theta3));
    Alcotest.test_case "equal_up_to_renaming with reordered head" `Quick
      (fun () ->
        let reordered =
          Tgd.make
            ~body:[ Atom.make "proj" [ v "A"; v "B"; v "C" ] ]
            ~head:
              [
                Atom.make "org" [ v "N"; v "C" ];
                Atom.make "task" [ v "A"; v "B"; v "N" ];
              ]
            ()
        in
        Alcotest.(check bool)
          "reordered equal" true
          (Tgd.equal_up_to_renaming Fixtures.theta3 reordered));
    Alcotest.test_case "canonicalize is idempotent" `Quick (fun () ->
        let c1 = Tgd.canonicalize Fixtures.theta3 in
        let c2 = Tgd.canonicalize c1 in
        Alcotest.(check bool) "idempotent" true (Tgd.equal c1 c2));
    Alcotest.test_case "make rejects empty sides" `Quick (fun () ->
        Alcotest.check_raises "empty body" (Invalid_argument "Tgd.make: empty body")
          (fun () ->
            ignore (Tgd.make ~body:[] ~head:[ Atom.make "r" [ v "X" ] ] ()));
        Alcotest.check_raises "empty head" (Invalid_argument "Tgd.make: empty head")
          (fun () ->
            ignore (Tgd.make ~body:[ Atom.make "r" [ v "X" ] ] ~head:[] ())));
  ]

let containment_tests =
  let r2 x y = Atom.make "r2" [ x; y ] in
  [
    Alcotest.test_case "path query contained in single edge" `Quick (fun () ->
        (* r2(X,Y), r2(Y,Z)  ⊆  r2(A,B)  (boolean) *)
        let path = [ r2 (v "X") (v "Y"); r2 (v "Y") (v "Z") ] in
        let edge = [ r2 (v "A") (v "B") ] in
        Alcotest.(check bool) "path in edge" true (Containment.contained_in path edge);
        Alcotest.(check bool) "edge not in path" false (Containment.contained_in edge path));
    Alcotest.test_case "distinguished variables restrict homomorphisms" `Quick
      (fun () ->
        (* with output X, r2(X,Y) is NOT contained in r2(Y,X) *)
        let q = [ r2 (v "X") (v "Y") ] in
        let q' = [ r2 (v "Y") (v "X") ] in
        let dx = String_set.singleton "X" in
        Alcotest.(check bool)
          "boolean: equivalent" true
          (Containment.equivalent q q');
        Alcotest.(check bool)
          "with output: not contained" false
          (Containment.contained_in ~distinguished:dx q q'));
    Alcotest.test_case "constants must match" `Quick (fun () ->
        let qa = [ r2 (c "a") (v "Y") ] in
        let qb = [ r2 (c "b") (v "Y") ] in
        Alcotest.(check bool) "a not in b" false (Containment.contained_in qa qb);
        Alcotest.(check bool)
          "a in generic" true
          (Containment.contained_in qa [ r2 (v "X") (v "Y") ]));
    Alcotest.test_case "minimize removes the redundant atom" `Quick (fun () ->
        (* r2(X,Y), r2(X,Z) minimises to a single atom (boolean query) *)
        let q = [ r2 (v "X") (v "Y"); r2 (v "X") (v "Z") ] in
        Alcotest.(check int) "one atom" 1 (List.length (Containment.minimize q)));
    Alcotest.test_case "minimize keeps genuinely joined atoms" `Quick
      (fun () ->
        (* a real 2-path with a constant endpoint cannot shrink *)
        let q = [ r2 (c "a") (v "Y"); r2 (v "Y") (c "b") ] in
        Alcotest.(check int) "two atoms" 2 (List.length (Containment.minimize q)));
    Alcotest.test_case "minimize respects distinguished variables" `Quick
      (fun () ->
        let q = [ r2 (v "X") (v "Y"); r2 (v "X") (v "Z") ] in
        let dz = String_set.of_list [ "Y"; "Z" ] in
        Alcotest.(check int)
          "cannot drop output atoms" 2
          (List.length (Containment.minimize ~distinguished:dz q)));
    Alcotest.test_case "adversarial frozen-name constants are not captured"
      `Quick (fun () ->
        (* regression: the canonical instance used to freeze variable x as
           the constant "__frz_x", so a query literally mentioning that
           constant evaluated to true over it and containment was claimed;
           freezing now uses nulls, which no constant can equal *)
        let q_var = [ Atom.make "r1" [ v "x" ] ] in
        let q_cst = [ Atom.make "r1" [ c "__frz_x" ] ] in
        Alcotest.(check bool)
          "variable query not contained in constant query" false
          (Containment.contained_in q_var q_cst);
        Alcotest.(check bool)
          "constant query contained in variable query" true
          (Containment.contained_in q_cst q_var));
    Alcotest.test_case "exactly one copy of a duplicated atom survives" `Quick
      (fun () ->
        (* regression: minimize removed atoms by physical equality, so a
           duplicated atom sharing one allocation could never shrink —
           dropping one copy dropped both; removal is positional now *)
        let a = r2 (v "X") (v "Y") in
        Alcotest.(check int)
          "one atom" 1
          (List.length (Containment.minimize [ a; a ])));
  ]

let () =
  Alcotest.run "logic"
    [
      ("term", term_tests);
      ("atom", atom_tests);
      ("subst", subst_tests);
      ("cq", cq_tests);
      ("cq-properties", cq_property_tests);
      ("tgd", tgd_tests);
      ("containment", containment_tests);
    ]
