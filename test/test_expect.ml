(* The declarative expectation DSL (lib/expect).

   Three layers:
   1. the canonical printer and the parser are inverses: a qcheck
      round-trip over adversarial names, quoting, inline bodies and
      fraction extremes, plus printed-form idempotence;
   2. flag semantics pinned as units: expect_failure captures guarded
      exceptions only, a broken test that starts passing is itself a
      failure, skip never evaluates, and a dangling scenario-file
      reference is a hard failure even under expect_failure;
   3. the runner end to end: byte-identical reports for any --jobs over
      the committed expect/ suite, and the promote workflow (promote a
      stale golden, re-run green, promoting a clean suite is a no-op). *)

open QCheck2
module Rtest = Expect.Rtest
module Runner = Expect.Runner

(* --- generators --------------------------------------------------------- *)

let plain_gen = Gen.(string_size (int_range 1 8) ~gen:(char_range 'a' 'z'))

let adversarial = [
  "has space"; "quote\"inside"; "back\\slash"; "#leading-hash"; "tab\there";
  "multi\nline"; "trailing "; " leading"; "--"; "---x"; "a,b"; "\"";
]

let weird_gen = Gen.(oneof [ plain_gen; oneofl adversarial ])

let frac_gen =
  Gen.(
    oneof
      [
        (let* n = int_range (-1000) 1000 in
         let* d = int_range 1 60 in
         return (Util.Frac.make n d));
        oneofl
          [
            Util.Frac.of_int 0;
            Util.Frac.of_int max_int;
            Util.Frac.make min_int 3;
            Util.Frac.make 22 3;
          ];
      ])

(* solver names survive the comma-joined round trip as long as they contain
   no comma and are nonempty *)
let solver_name_gen =
  Gen.(
    oneof [ plain_gen; oneofl [ "has space"; "quote\"y"; "#hash"; "up/down" ] ])

let label_gen = weird_gen

let value_expect_gen =
  Gen.(
    let* f = frac_gen in
    let* labels = list_size (int_range 0 3) label_gen in
    return (Rtest.Value (f, labels)))

let any_expect_gen =
  Gen.(
    oneof
      [
        map (fun f -> Rtest.Objective f) frac_gen;
        map (fun ls -> Rtest.Selected ls) (list_size (int_range 0 3) label_gen);
        value_expect_gen;
        (let* name = weird_gen in
         let* count = int_range (-5) 1000 in
         return (Rtest.Counter (name, count)));
      ])

(* inline body lines are kept verbatim, so anything goes except the
   three-dash delimiter and embedded newlines (a line is a line) *)
let body_line_gen =
  Gen.(
    map
      (fun s -> if s = "---" then "- - -" else s)
      (oneof
         [
           plain_gen; return ""; return "  indented";
           return "source relation r(a)"; return "# not a comment here";
         ]))

let scenario_gen =
  Gen.(
    oneof
      [
        map (fun p -> Rtest.File p) weird_gen;
        map
          (fun ls -> Rtest.Inline ls)
          (list_size (int_range 0 4) body_line_gen);
      ])

let flag_gen =
  Gen.(
    let reason = weird_gen in
    option
      (oneof
         [
           map (fun r -> Rtest.Expect_failure r) reason;
           map (fun r -> Rtest.Broken r) reason;
           map (fun r -> Rtest.Skip r) reason;
         ]))

let test_gen index =
  Gen.(
    let* name = weird_gen in
    let* scenario = scenario_gen in
    let* solvers = oneof [ return []; list_size (int_range 1 3) solver_name_gen ] in
    let* expects =
      (* objective/selected/counter expectations require a solver list *)
      if solvers = [] then list_size (int_range 0 3) value_expect_gen
      else list_size (int_range 0 4) any_expect_gen
    in
    let* seed = option (int_range (-1000) 1000) in
    let* weights =
      option
        (let* a = int_range (-9) 9 in
         let* b = int_range (-9) 9 in
         let* c = int_range (-9) 9 in
         return (a, b, c))
    in
    let* cache = bool in
    let* core = bool in
    let* compose = bool in
    let* flag = flag_gen in
    return
      {
        (* suffix the index so names are unique within the file *)
        Rtest.name = Printf.sprintf "%s_%d" name index;
        scenario;
        solvers;
        seed;
        weights;
        cache;
        core;
        compose;
        expects;
        flag;
      })

let file_gen =
  Gen.(
    let* n = int_range 1 4 in
    flatten_l (List.init n test_gen))

let roundtrip_tests =
  [
    Test.make ~name:"parse (print file) = file" ~count:300 file_gen (fun f ->
        match Rtest.parse (Rtest.print f) with
        | Ok f' -> Rtest.equal_file f f'
        | Error msg -> Test.fail_reportf "did not parse back: %s" msg);
    Test.make ~name:"printed form is a fixed point" ~count:150 file_gen
      (fun f ->
        let once = Rtest.print f in
        match Rtest.parse once with
        | Ok f' -> String.equal once (Rtest.print f')
        | Error msg -> Test.fail_reportf "did not parse back: %s" msg);
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* --- flag semantics ------------------------------------------------------ *)

let appendix_scn =
  String.concat "\n"
    [
      "source relation proj(pname, emp, org)";
      "target relation task(pname, emp, oid)";
      "target relation org(oid, oname)";
      "tgd theta1: proj(P, E, O) -> task(P, E, T)";
      "tgd theta3: proj(P, E, O) -> task(P, E, T), org(T, O)";
      "source tuple proj(BigData, Bob, IBM)";
      "source tuple proj(ML, Alice, SAP)";
      "target tuple task(ML, Alice, 111)";
      "target tuple org(111, SAP)";
      "target tuple task(Social, Carl, 222)";
      "target tuple org(222, MSR)";
    ]

let suite_of_string text =
  match Rtest.parse text with
  | Ok tests -> [ ("unit.rtest", tests) ]
  | Error msg -> Alcotest.failf "suite did not parse: %s" msg

let sole_outcome report =
  match report.Expect.Runner.files with
  | [ (_, [ r ]) ] -> r.Expect.Runner.outcome
  | _ -> Alcotest.fail "expected exactly one result"

let run_one text = sole_outcome (Expect.Runner.run (suite_of_string text))

let mk ?(header = []) body =
  String.concat "\n" (header @ [ "scenario inline"; "---"; appendix_scn; "---" ] @ body)

let test_xfail_guarded () =
  (* non-positive weights raise inside the guarded region: xfail *)
  let t =
    mk ~header:[ "test t"; "expect_failure bad weights"; "weights 0 1 1" ] []
  in
  match run_one t with
  | Expect.Runner.Xfail r -> Alcotest.(check string) "reason" "bad weights" r
  | _ -> Alcotest.fail "expected Xfail"

let test_xfail_on_success_fails () =
  let t = mk ~header:[ "test t"; "expect_failure should not complete" ] [] in
  match run_one t with
  | Expect.Runner.Fail [ Expect.Runner.Hard m ] ->
    Alcotest.(check bool) "names the completion" true
      (String.length m > 0)
  | _ -> Alcotest.fail "expected a hard failure"

let test_broken_still_failing () =
  let t =
    mk
      ~header:[ "test t"; "broken wrong table"; "solver exact" ]
      [ "expect objective 5" ]
  in
  (match run_one t with
  | Expect.Runner.Still_broken r ->
    Alcotest.(check string) "reason" "wrong table" r
  | _ -> Alcotest.fail "expected Still_broken");
  let report = Expect.Runner.run (suite_of_string t) in
  Alcotest.(check int) "broken does not fail the run" 0
    (Expect.Runner.exit_code report)

let test_broken_now_passes_fails () =
  let t =
    mk
      ~header:[ "test t"; "broken stale flag"; "solver exact" ]
      [ "expect objective 4" ]
  in
  match run_one t with
  | Expect.Runner.Fail [ Expect.Runner.Hard m ] ->
    Alcotest.(check bool) "says to remove the flag" true
      (String.length m > 0)
  | _ -> Alcotest.fail "a broken test that passes must fail the run"

let test_skip_never_evaluates () =
  (* the scenario is malformed; skip must win without touching it *)
  let t =
    String.concat "\n"
      [
        "test t"; "skip not today"; "scenario inline"; "---"; "not a document";
        "---";
      ]
  in
  match run_one t with
  | Expect.Runner.Skipped r -> Alcotest.(check string) "reason" "not today" r
  | _ -> Alcotest.fail "expected Skipped"

let test_dangling_reference_is_hard () =
  (* resolution happens before the guarded region: a typo in the path is a
     hard failure even under expect_failure *)
  let t =
    String.concat "\n"
      [
        "test t"; "expect_failure wrong kind of failure";
        "scenario file no/such/file.scn";
      ]
  in
  match run_one t with
  | Expect.Runner.Fail [ Expect.Runner.Hard m ] ->
    Alcotest.(check bool) "names the path" true
      (let sub = "no/such/file.scn" in
       let rec go i =
         i + String.length sub <= String.length m
         && (String.sub m i (String.length sub) = sub || go (i + 1))
       in
       go 0)
  | _ -> Alcotest.fail "expected a hard failure naming the path"

let test_corpus_load_missing_is_error () =
  (* the satellite fix: Corpus.load returns Error, never raises Sys_error *)
  match Fuzz.Corpus.load "definitely/missing.scn" with
  | Error msg ->
    Alcotest.(check bool) "mentions the path" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "loading a missing file must be an Error"

let test_unknown_solver_is_hard () =
  let t = mk ~header:[ "test t"; "solver nosuch" ] [ "expect objective 4" ] in
  match run_one t with
  | Expect.Runner.Fail (Expect.Runner.Hard m :: _) ->
    Alcotest.(check bool) "lists the registry" true
      (String.length m > 0)
  | _ -> Alcotest.fail "expected a hard failure"

let flag_tests =
  [
    Alcotest.test_case "expect_failure captures guarded exceptions" `Quick
      test_xfail_guarded;
    Alcotest.test_case "expect_failure on a completing test fails" `Quick
      test_xfail_on_success_fails;
    Alcotest.test_case "broken and still failing is tolerated" `Quick
      test_broken_still_failing;
    Alcotest.test_case "broken test that passes is a failure" `Quick
      test_broken_now_passes_fails;
    Alcotest.test_case "skip never evaluates the scenario" `Quick
      test_skip_never_evaluates;
    Alcotest.test_case "dangling scenario reference is hard" `Quick
      test_dangling_reference_is_hard;
    Alcotest.test_case "Corpus.load on a missing path is an Error" `Quick
      test_corpus_load_missing_is_error;
    Alcotest.test_case "unknown solver names the registry" `Quick
      test_unknown_solver_is_hard;
  ]

(* --- the committed suite, jobs-invariance, promotion --------------------- *)

(* dune runs tests in _build/default/test; walk up to the repo root. *)
let find_expect_dir () =
  let rec up dir n =
    if n < 0 then None
    else
      let candidate = Filename.concat dir "expect" in
      if Sys.file_exists candidate && Sys.is_directory candidate then
        Some candidate
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else up parent (n - 1)
  in
  up (Sys.getcwd ()) 6

let test_committed_suite_green () =
  match find_expect_dir () with
  | None -> () (* no suite checked out — nothing to run *)
  | Some dir -> (
    match Expect.Runner.load_dir dir with
    | Error msg -> Alcotest.failf "expect suite did not load: %s" msg
    | Ok suites ->
      let report = Expect.Runner.run ~jobs:1 suites in
      Alcotest.(check int) "suite is green" 0 (Expect.Runner.exit_code report))

let test_jobs_invariance () =
  match find_expect_dir () with
  | None -> ()
  | Some dir -> (
    match Expect.Runner.load_dir dir with
    | Error msg -> Alcotest.failf "expect suite did not load: %s" msg
    | Ok suites ->
      let r1 = Expect.Runner.render (Expect.Runner.run ~jobs:1 suites) in
      let r4 = Expect.Runner.render (Expect.Runner.run ~jobs:4 suites) in
      Alcotest.(check string) "reports byte-identical for jobs 1 and 4" r1 r4)

let test_promote_roundtrip () =
  (* stale goldens promote to the observed values, and the rewritten file
     re-runs green *)
  let t =
    mk
      ~header:[ "test t"; "solver exact" ]
      [ "expect objective 5"; "expect selected theta1" ]
  in
  let suites = suite_of_string t in
  let report = Expect.Runner.run suites in
  Alcotest.(check int) "stale goldens fail" 1 (Expect.Runner.exit_code report);
  match Expect.Runner.promote suites report with
  | [ (path, text) ] -> (
    Alcotest.(check string) "same path" "unit.rtest" path;
    match Rtest.parse text with
    | Error msg -> Alcotest.failf "promoted file did not parse: %s" msg
    | Ok tests ->
      let report' = Expect.Runner.run [ (path, tests) ] in
      Alcotest.(check int) "promoted suite is green" 0
        (Expect.Runner.exit_code report');
      Alcotest.(check (list (pair string string)))
        "promoting a clean suite is a no-op" []
        (Expect.Runner.promote [ (path, tests) ] report'))
  | _ -> Alcotest.fail "expected exactly one promoted file"

let test_promote_skips_flagged () =
  (* a broken test never promotes, even when its mismatch carries an agreed
     actual value *)
  let t =
    mk
      ~header:[ "test t"; "broken known wrong"; "solver exact" ]
      [ "expect objective 5" ]
  in
  let suites = suite_of_string t in
  let report = Expect.Runner.run suites in
  Alcotest.(check (list (pair string string)))
    "nothing to promote" []
    (Expect.Runner.promote suites report)

let test_filter () =
  let t =
    String.concat "\n"
      [
        mk ~header:[ "test alpha"; "solver exact" ] [ "expect objective 4" ];
        mk ~header:[ "test beta"; "solver exact" ] [ "expect objective 5" ];
      ]
  in
  let suites = suite_of_string t in
  let report = Expect.Runner.run ~filter:"alpha" suites in
  Alcotest.(check int) "only alpha ran" 1 report.Expect.Runner.passed;
  Alcotest.(check int) "beta filtered out" 0 report.Expect.Runner.failed

let runner_tests =
  [
    Alcotest.test_case "committed expect/ suite is green" `Quick
      test_committed_suite_green;
    Alcotest.test_case "reports are jobs-invariant" `Quick test_jobs_invariance;
    Alcotest.test_case "promote fixes stale goldens" `Quick
      test_promote_roundtrip;
    Alcotest.test_case "promote skips flagged tests" `Quick
      test_promote_skips_flagged;
    Alcotest.test_case "--filter selects by substring" `Quick test_filter;
  ]

let () =
  Alcotest.run "expect"
    [
      ("roundtrip", roundtrip_tests);
      ("flags", flag_tests);
      ("runner", runner_tests);
    ]
