(* The Parallel.Pool determinism contract, tested against the sequential
   oracle:
   1. qcheck properties — [parallel_map f] equals [List.map f] for random
      workloads, pool sizes and chunkings; order-sensitive reductions match
      a sequential left fold; worker exceptions propagate to the caller
      exactly as a sequential run would raise them;
   2. pool lifecycle — spawn-once workers are reused across many batches
      (including after a failed batch and from nested fan-outs) and
      shutdown is idempotent;
   3. golden solver runs — pooled multi-restart local search and
      multi-chain annealing return bit-identical selections and objectives
      to their sequential runs on the three fixed iBench scenarios. *)

open Util

exception Boom of int

let frac = Alcotest.testable Frac.pp Frac.equal

(* --- qcheck: parallel_map vs the sequential oracle --------------------- *)

let workload_gen =
  QCheck2.Gen.(
    triple (list_size (int_range 0 60) (int_range (-1000) 1000))
      (int_range 1 4) (int_range 1 7))

let print_workload (xs, jobs, chunk) =
  Printf.sprintf "xs=[%s] jobs=%d chunk=%d"
    (String.concat ";" (List.map string_of_int xs))
    jobs chunk

let map_matches_oracle =
  QCheck2.Test.make ~count:40 ~name:"parallel_map f = List.map f"
    ~print:print_workload workload_gen (fun (xs, jobs, chunk) ->
      let f x = (x * x) + (7 * x) - 3 in
      Parallel.Pool.with_pool ~jobs (fun pool ->
          Parallel.Pool.parallel_map_list ~chunk pool f xs = List.map f xs))

let map_reduce_matches_fold =
  (* string concatenation is not associative-with-init, so any combine
     reordering or tree reduction would change the result *)
  QCheck2.Test.make ~count:40
    ~name:"parallel_map_reduce = sequential left fold" ~print:print_workload
    workload_gen (fun (xs, jobs, chunk) ->
      let xs = Array.of_list xs in
      Parallel.Pool.with_pool ~jobs (fun pool ->
          Parallel.Pool.parallel_map_reduce ~chunk pool ~map:string_of_int
            ~combine:(fun acc s -> acc ^ "|" ^ s)
            ~init:"" xs
          = Array.fold_left
              (fun acc x -> acc ^ "|" ^ string_of_int x)
              "" xs))

let exn_gen =
  QCheck2.Gen.(
    let* n = int_range 1 60 in
    let* first_bad = int_range 0 (n - 1) in
    let* extra_bad = list_size (int_range 0 5) (int_range first_bad (n - 1)) in
    let* jobs = int_range 1 4 in
    let* chunk = int_range 1 7 in
    return (n, first_bad, extra_bad, jobs, chunk))

let exceptions_propagate =
  QCheck2.Test.make ~count:40
    ~name:"worker exception = sequential run's first exception"
    ~print:(fun (n, first_bad, extra_bad, jobs, chunk) ->
      Printf.sprintf "n=%d first_bad=%d extra=[%s] jobs=%d chunk=%d" n
        first_bad
        (String.concat ";" (List.map string_of_int extra_bad))
        jobs chunk)
    exn_gen
    (fun (n, first_bad, extra_bad, jobs, chunk) ->
      let bad x = x = first_bad || List.mem x extra_bad in
      let f x = if bad x then raise (Boom x) else x in
      Parallel.Pool.with_pool ~jobs (fun pool ->
          match
            Parallel.Pool.parallel_map ~chunk pool f (Array.init n Fun.id)
          with
          | _ -> false
          | exception Boom i ->
            (* the lowest failing index wins, whatever chunks other
               failures landed in *)
            i = first_bad))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ map_matches_oracle; map_reduce_matches_fold; exceptions_propagate ]

(* --- pool lifecycle ---------------------------------------------------- *)

let lifecycle_tests =
  [
    Alcotest.test_case "one pool serves many batches" `Quick (fun () ->
        Parallel.Pool.with_pool ~jobs:3 (fun pool ->
            Alcotest.(check int) "jobs" 3 (Parallel.Pool.jobs pool);
            for round = 1 to 100 do
              let n = 1 + (round mod 17) in
              let xs = Array.init n (fun i -> (round * 31) + i) in
              let got =
                Parallel.Pool.parallel_map
                  ~chunk:(1 + (round mod 5))
                  pool string_of_int xs
              in
              if got <> Array.map string_of_int xs then
                Alcotest.failf "batch %d diverged from oracle" round
            done));
    Alcotest.test_case "pool survives a failed batch" `Quick (fun () ->
        Parallel.Pool.with_pool ~jobs:3 (fun pool ->
            let xs = Array.init 20 Fun.id in
            (try
               ignore
                 (Parallel.Pool.parallel_map ~chunk:1 pool
                    (fun x -> if x >= 5 then raise (Boom x) else x)
                    xs)
             with Boom 5 -> ());
            Alcotest.(check (array int))
              "next batch is clean"
              (Array.map (fun x -> x + 1) xs)
              (Parallel.Pool.parallel_map pool (fun x -> x + 1) xs)));
    Alcotest.test_case "nested fan-out runs inline, no deadlock" `Quick
      (fun () ->
        Parallel.Pool.with_pool ~jobs:2 (fun pool ->
            Alcotest.(check bool) "caller is not a worker" false
              (Parallel.Pool.on_worker ());
            let got =
              Parallel.Pool.parallel_map ~chunk:1 pool
                (fun x ->
                  Array.fold_left ( + ) 0
                    (Parallel.Pool.parallel_map pool Fun.id
                       (Array.make x 1)))
                (Array.init 6 Fun.id)
            in
            Alcotest.(check (array int)) "sums" (Array.init 6 Fun.id) got));
    Alcotest.test_case "shutdown is idempotent; late batches rejected" `Quick
      (fun () ->
        let pool = Parallel.Pool.create ~jobs:2 () in
        Alcotest.(check (array int))
          "batch before shutdown" [| 0; 2; 4 |]
          (Parallel.Pool.parallel_map pool (fun x -> 2 * x) [| 0; 1; 2 |]);
        Parallel.Pool.shutdown pool;
        Parallel.Pool.shutdown pool;
        Alcotest.check_raises "submission after shutdown"
          (Invalid_argument "Parallel.Pool: batch submitted to a shut-down pool")
          (fun () ->
            ignore (Parallel.Pool.parallel_map pool Fun.id [| 1; 2; 3 |])));
    Alcotest.test_case "repeated create/shutdown cycles" `Quick (fun () ->
        (* domains are joined on shutdown, so churning pools neither leaks
           nor exhausts the runtime's domain slots *)
        for i = 1 to 50 do
          Parallel.Pool.with_pool ~jobs:4 (fun pool ->
              Alcotest.(check (array int))
                (Printf.sprintf "cycle %d" i)
                [| i; i + 1 |]
                (Parallel.Pool.parallel_map pool (fun x -> x + i) [| 0; 1 |]))
        done);
  ]

(* --- seed splitting ---------------------------------------------------- *)

let seed_tests =
  [
    Alcotest.test_case "derive keeps the base at index 0" `Quick (fun () ->
        List.iter
          (fun base ->
            Alcotest.(check int)
              (Printf.sprintf "base %d" base)
              base
              (Parallel.Seed.derive base 0))
          [ 0; 1; 42; max_int ]);
    Alcotest.test_case "derived seeds are distinct and non-negative" `Quick
      (fun () ->
        List.iter
          (fun base ->
            let seeds = List.init 1000 (Parallel.Seed.derive base) in
            List.iter
              (fun s -> if s < 0 then Alcotest.failf "negative seed %d" s)
              seeds;
            let distinct = List.sort_uniq compare seeds in
            Alcotest.(check int)
              (Printf.sprintf "no collisions under base %d" base)
              1000 (List.length distinct))
          [ 0; 7; 123456789 ]);
    Alcotest.test_case "negative index rejected" `Quick (fun () ->
        Alcotest.check_raises "derive -1"
          (Invalid_argument "Parallel.Seed.derive: negative task index")
          (fun () -> ignore (Parallel.Seed.derive 3 (-1))));
  ]

(* --- golden: pooled solvers vs sequential on fixed iBench scenarios --- *)

let golden_tests =
  List.map
    (fun g ->
      Alcotest.test_case
        (Printf.sprintf "pooled solvers match sequential on %s"
           g.Fixtures.g_name)
        `Quick
        (fun () ->
          let p = Fixtures.golden_problem g in
          let seq = Core.Local_search.solve ~restarts:8 p in
          let seq_anneal = Core.Anneal.solve_multi ~chains:4 p in
          Parallel.Pool.with_pool ~jobs:4 (fun pool ->
              let par = Core.Local_search.solve ~pool ~restarts:8 p in
              Alcotest.(check (list int))
                "local-search selection"
                (Core.Problem.indices_of_selection seq)
                (Core.Problem.indices_of_selection par);
              Alcotest.check frac "local-search objective"
                (Core.Objective.value p seq)
                (Core.Objective.value p par);
              let par_anneal = Core.Anneal.solve_multi ~pool ~chains:4 p in
              Alcotest.(check (list int))
                "anneal selection"
                (Core.Problem.indices_of_selection seq_anneal)
                (Core.Problem.indices_of_selection par_anneal));
          (* one chain degenerates to the plain annealer, whose selection
             (and objective) is pinned by the golden fixtures *)
          Alcotest.(check (list int))
            "solve_multi ~chains:1 = solve" g.Fixtures.g_anneal
            (Core.Problem.indices_of_selection
               (Core.Anneal.solve_multi ~chains:1 p))))
    Fixtures.golden_scenarios

let () =
  Alcotest.run "parallel"
    [
      ("qcheck-oracle", qcheck_tests);
      ("pool-lifecycle", lifecycle_tests);
      ("seed-splitting", seed_tests);
      ("golden-solvers", golden_tests);
    ]
