(* End-to-end tests of the metamorphic fuzzer itself.

   Four layers:
   1. the generator is a pure function of the seed, and the campaign
      summary is bit-identical across pool sizes;
   2. every oracle family is clean on a modest budget of generated cases
      (the bounded CI campaign runs a larger one);
   3. injected faults — a perturbed flip delta, a SET COVER closed form
      with the wrong slope — are caught, shrink to tiny counterexamples
      (<= 4 candidates, <= 6 tuples), survive a corpus round trip and
      pass their real oracles;
   4. the committed corpus/ directory replays clean, forever. *)

let case_eq = Alcotest.testable Fuzz.Case.pp Fuzz.Case.equal

(* --- generator and campaign determinism -------------------------------- *)

let test_gen_deterministic () =
  for seed = 0 to 60 do
    Alcotest.check case_eq
      (Printf.sprintf "Gen.case ~seed:%d is reproducible" seed)
      (Fuzz.Gen.case ~seed) (Fuzz.Gen.case ~seed)
  done

let test_gen_tags_covered () =
  (* Every generator family shows up within a reasonable seed range, so no
     corner case is silently dead. *)
  let seen = Hashtbl.create 16 in
  for i = 0 to 400 do
    let c = Fuzz.Gen.case ~seed:(Parallel.Seed.derive 42 i) in
    Hashtbl.replace seen c.Fuzz.Case.tag ()
  done;
  List.iter
    (fun tag ->
      Alcotest.(check bool)
        (Printf.sprintf "tag %s generated" tag)
        true (Hashtbl.mem seen tag))
    Fuzz.Gen.tags

let summary_string s = Format.asprintf "%a" Fuzz.Driver.pp_summary s

let test_jobs_determinism () =
  let run jobs =
    Parallel.Pool.with_pool ~jobs (fun pool ->
        Fuzz.Driver.run ~pool ~seed:11 ~budget:120 ())
  in
  let sequential = Fuzz.Driver.run ~seed:11 ~budget:120 () in
  Alcotest.(check string)
    "jobs=1 equals no-pool" (summary_string sequential)
    (summary_string (run 1));
  Alcotest.(check string)
    "jobs=3 equals no-pool" (summary_string sequential)
    (summary_string (run 3));
  (* the campaign-level evaluation cache changes no verdict either *)
  let cache = Cache.create () in
  Alcotest.(check string)
    "cached campaign equals uncached" (summary_string sequential)
    (summary_string (Fuzz.Driver.run ~cache ~seed:11 ~budget:120 ()));
  let stats = Cache.stats cache in
  Alcotest.(check bool)
    "cached campaign actually hit the cache" true
    (stats.Cache.hits > 0 && stats.Cache.misses > 0)

(* --- the oracles are clean on generated cases --------------------------- *)

let test_oracles_clean () =
  let s = Fuzz.Driver.run ~seed:2026 ~budget:200 () in
  List.iter
    (fun (f : Fuzz.Driver.failure) ->
      Alcotest.failf "oracle %s failed on seed %d (%s): %s@.shrunk: %a"
        f.Fuzz.Driver.oracle f.Fuzz.Driver.original.Fuzz.Case.seed
        f.Fuzz.Driver.original.Fuzz.Case.tag f.Fuzz.Driver.detail Fuzz.Case.pp
        f.Fuzz.Driver.shrunk)
    s.Fuzz.Driver.failures;
  Alcotest.(check bool)
    "every oracle exercised (nonzero pass count)" true
    (List.for_all (fun (_, (p, _, _)) -> p > 0) s.Fuzz.Driver.by_oracle)

(* --- fault injection exercises the whole pipeline ----------------------- *)

let faulty name =
  match List.assoc_opt name Fuzz.Oracle.faults with
  | Some o -> o
  | None -> Alcotest.failf "fault %s not registered" name

let test_fault name =
  let broken = faulty name in
  let s = Fuzz.Driver.run ~oracles:[ broken ] ~seed:7 ~budget:250 () in
  Alcotest.(check bool)
    (name ^ " fault is caught") true
    (s.Fuzz.Driver.failures <> []);
  List.iter
    (fun (f : Fuzz.Driver.failure) ->
      let sh = f.Fuzz.Driver.shrunk in
      if Fuzz.Case.num_candidates sh > 4 then
        Alcotest.failf "%s: shrunk case still has %d candidates (%a)" name
          (Fuzz.Case.num_candidates sh) Fuzz.Case.pp sh;
      if Fuzz.Case.num_tuples sh > 6 then
        Alcotest.failf "%s: shrunk case still has %d tuples (%a)" name
          (Fuzz.Case.num_tuples sh) Fuzz.Case.pp sh;
      (* Shrinking preserved the failure… *)
      Alcotest.(check bool)
        (name ^ ": shrunk case still fails the broken oracle")
        true
        (Fuzz.Oracle.is_failure broken sh);
      (* …and the corresponding real oracle passes the shrunk case, so the
         counterexample doubles as a regression seed. *)
      match Fuzz.Oracle.find broken.Fuzz.Oracle.name with
      | None -> Alcotest.failf "no real oracle named %s" broken.Fuzz.Oracle.name
      | Some real ->
        Alcotest.(check bool)
          (name ^ ": real oracle passes the shrunk case")
          false
          (Fuzz.Oracle.is_failure real sh))
    s.Fuzz.Driver.failures;
  (* Corpus round trip: save every failure, load the directory back, and
     replay each entry against the real oracle. *)
  let dir = Printf.sprintf "fuzz-corpus-%s" name in
  let paths = Fuzz.Driver.save_failures ~dir s in
  Alcotest.(check int)
    (name ^ ": one corpus file per distinct failure name")
    (List.length (List.sort_uniq compare paths))
    (List.length
       (List.sort_uniq compare
          (List.map
             (fun (f : Fuzz.Driver.failure) ->
               Fuzz.Corpus.filename
                 {
                   Fuzz.Corpus.oracle = f.Fuzz.Driver.oracle;
                   detail = "";
                   case = f.Fuzz.Driver.shrunk;
                 })
             s.Fuzz.Driver.failures)));
  match Fuzz.Corpus.load_dir dir with
  | Error msg -> Alcotest.failf "load_dir: %s" msg
  | Ok entries ->
    Alcotest.(check bool) (name ^ ": corpus nonempty") true (entries <> []);
    List.iter
      (fun (e : Fuzz.Corpus.entry) ->
        (match Fuzz.Driver.replay e with
        | Ok () -> ()
        | Error msg ->
          Alcotest.failf "%s: corpus entry fails its real oracle: %s" name msg);
        match Fuzz.Driver.replay ~oracles:[ broken ] e with
        | Ok () ->
          Alcotest.failf "%s: corpus entry no longer fails the broken oracle"
            name
        | Error _ -> ())
      entries

let test_fault_flip_delta () = test_fault "flip-delta"

let test_fault_closed_form () = test_fault "closed-form"

(* --- corpus format round trip ------------------------------------------- *)

let test_corpus_roundtrip () =
  for i = 0 to 80 do
    let case = Fuzz.Gen.case ~seed:(Parallel.Seed.derive 99 i) in
    let entry =
      { Fuzz.Corpus.oracle = "incremental"; detail = "round trip"; case }
    in
    match Fuzz.Corpus.of_string (Fuzz.Corpus.to_string entry) with
    | Error msg -> Alcotest.failf "case %d does not parse back: %s" i msg
    | Ok e ->
      Alcotest.(check string) "oracle survives" "incremental" e.Fuzz.Corpus.oracle;
      Alcotest.(check string) "detail survives" "round trip" e.Fuzz.Corpus.detail;
      Alcotest.check case_eq
        (Printf.sprintf "case %d round trips" i)
        case e.Fuzz.Corpus.case
  done

(* --- the committed corpus replays clean --------------------------------- *)

(* dune runs tests in _build/default/test; walk up to the repo root. *)
let find_corpus_dir () =
  let rec up dir n =
    if n < 0 then None
    else
      let candidate = Filename.concat dir "corpus" in
      if Sys.file_exists candidate && Sys.is_directory candidate then
        Some candidate
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else up parent (n - 1)
  in
  up (Sys.getcwd ()) 6

let test_replay_corpus () =
  match find_corpus_dir () with
  | None -> () (* no corpus checked out — nothing to replay *)
  | Some dir -> (
    match Fuzz.Corpus.load_dir dir with
    | Error msg -> Alcotest.failf "corpus is malformed: %s" msg
    | Ok entries ->
      List.iter
        (fun (e : Fuzz.Corpus.entry) ->
          match Fuzz.Driver.replay e with
          | Ok () -> ()
          | Error msg ->
            Alcotest.failf "corpus regression: %s seed %d: %s"
              e.Fuzz.Corpus.oracle e.Fuzz.Corpus.case.Fuzz.Case.seed msg)
        entries)

let () =
  Alcotest.run "fuzz"
    [
      ( "determinism",
        [
          Alcotest.test_case "generator is pure in the seed" `Quick
            test_gen_deterministic;
          Alcotest.test_case "all generator families reachable" `Quick
            test_gen_tags_covered;
          Alcotest.test_case "summary identical across pool sizes" `Quick
            test_jobs_determinism;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "all oracle families clean on 200 cases" `Quick
            test_oracles_clean;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "flip-delta fault shrinks and round-trips" `Quick
            test_fault_flip_delta;
          Alcotest.test_case "closed-form fault shrinks and round-trips" `Quick
            test_fault_closed_form;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "entry text format round-trips" `Quick
            test_corpus_roundtrip;
          Alcotest.test_case "committed corpus replays clean" `Quick
            test_replay_corpus;
        ] );
    ]
