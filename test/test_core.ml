open Relational
open Util
open Core

let frac = Alcotest.testable Frac.pp Frac.equal

let appendix_problem () =
  Problem.make ~source:Fixtures.instance_i ~j:Fixtures.instance_j
    [ Fixtures.theta1; Fixtures.theta3 ]

let extended_problem n =
  let i', j' = Fixtures.extended_example n in
  Problem.make ~source:i' ~j:j' [ Fixtures.theta1; Fixtures.theta3 ]

let sel p idx = Problem.selection_of_indices p idx

(* The appendix's full value table F({}) = 4, F({θ1}) = 7 1/3, F({θ3}) = 8,
   F({θ1,θ3}) = 12 is pinned declaratively in expect/e1_appendix.rtest;
   only the breakdown/accessor details stay as code. *)
let objective_tests =
  [
    Alcotest.test_case "appendix breakdown for {theta1}" `Quick (fun () ->
        let p = appendix_problem () in
        let b = Objective.breakdown p (sel p [ 0 ]) in
        Alcotest.check frac "unexplained 3 1/3" (Frac.make 10 3)
          b.Objective.unexplained;
        Alcotest.(check int) "1 error" 1 b.Objective.errors;
        Alcotest.(check int) "size 3" 3 b.Objective.size);
    Alcotest.test_case "empty_value" `Quick (fun () ->
        let p = appendix_problem () in
        Alcotest.check frac "4" (Frac.of_int 4) (Objective.empty_value p));
    Alcotest.test_case "weighted objective (appendix Theorem 1 variant)"
      `Quick (fun () ->
        let weights =
          { Problem.w_unexplained = 2; w_errors = 3; w_size = 4 }
        in
        let p =
          Problem.make ~weights ~source:Fixtures.instance_i
            ~j:Fixtures.instance_j
            [ Fixtures.theta1; Fixtures.theta3 ]
        in
        (* 2·(10/3) + 3·1 + 4·3 = 65/3 *)
        Alcotest.check frac "{theta1}" (Frac.make 65 3)
          (Objective.value p (sel p [ 0 ])));
    Alcotest.test_case "non-positive weights rejected" `Quick (fun () ->
        Alcotest.(check bool)
          "raises" true
          (match
             Problem.make
               ~weights:{ Problem.w_unexplained = 0; w_errors = 1; w_size = 1 }
               ~source:Fixtures.instance_i ~j:Fixtures.instance_j []
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

let solver_agreement_tests =
  [
    Alcotest.test_case "exact picks {} on the small example" `Quick (fun () ->
        let p = appendix_problem () in
        let best = Exact.solve p in
        Alcotest.(check (list int)) "empty" [] (Problem.indices_of_selection best));
    Alcotest.test_case "exact flips to {theta3} with 5 extra projects" `Quick
      (fun () ->
        let p = extended_problem 5 in
        let best = Exact.solve p in
        Alcotest.(check (list int)) "theta3" [ 1 ] (Problem.indices_of_selection best));
    Alcotest.test_case "with 4 extra projects {} is still optimal (tie)"
      `Quick (fun () ->
        let p = extended_problem 4 in
        Alcotest.check frac "tie at 8"
          (Objective.value p (sel p []))
          (Objective.value p (sel p [ 1 ])));
    Alcotest.test_case "greedy also flips to {theta3}" `Quick (fun () ->
        let p = extended_problem 5 in
        Alcotest.(check (list int))
          "theta3" [ 1 ]
          (Problem.indices_of_selection (Greedy.solve p)));
    Alcotest.test_case "cmd also flips to {theta3}" `Quick (fun () ->
        let p = extended_problem 5 in
        let r = Cmd.solve p in
        Alcotest.(check (list int))
          "theta3" [ 1 ]
          (Problem.indices_of_selection r.Cmd.selection);
        Alcotest.check frac "objective 8" (Frac.of_int 8) r.Cmd.objective);
    Alcotest.test_case "cmd fractional values live in [0,1]" `Quick (fun () ->
        let p = extended_problem 5 in
        let r = Cmd.solve p in
        Array.iter
          (fun v ->
            Alcotest.(check bool) "in box" true (v >= -1e-6 && v <= 1. +. 1e-6))
          r.Cmd.fractional);
    Alcotest.test_case "local search never worse than greedy" `Quick (fun () ->
        let p = extended_problem 3 in
        let g = Objective.value p (Greedy.solve p) in
        let l = Objective.value p (Local_search.solve ~restarts:3 p) in
        Alcotest.(check bool) "l <= g" true Frac.(l <= g));
  ]

let model_shape_tests =
  [
    Alcotest.test_case "cmd ground model shape" `Quick (fun () ->
        let p = appendix_problem () in
        let reduced = Preprocess.run p in
        let model = Cmd.build_model reduced.Preprocess.problem in
        (* 2 candidates + 2 coverable tuples *)
        Alcotest.(check int) "vars" 4 (Psl.Hlmrf.num_vars model);
        Alcotest.(check int) "constraints" 2 (Psl.Hlmrf.num_constraints model);
        (* 2 candidate costs + 2 explained losses *)
        Alcotest.(check int) "potentials" 4 (Psl.Hlmrf.num_potentials model));
  ]

let preprocess_tests =
  [
    Alcotest.test_case "certainly unexplained tuples are removed" `Quick
      (fun () ->
        let p = appendix_problem () in
        let r = Preprocess.run p in
        Alcotest.(check int)
          "2 kept" 2
          (Problem.num_tuples r.Preprocess.problem);
        Alcotest.(check int) "2 removed" 2 (List.length r.Preprocess.removed_tuples);
        Alcotest.check frac "constant 2" (Frac.of_int 2) r.Preprocess.constant);
    Alcotest.test_case "full_value matches the original objective" `Quick
      (fun () ->
        let p = appendix_problem () in
        let r = Preprocess.run p in
        List.iter
          (fun idx ->
            let s = sel p idx in
            Alcotest.check frac
              (Printf.sprintf "selection of %d" (List.length idx))
              (Objective.value p s) (Preprocess.full_value r s))
          [ []; [ 0 ]; [ 1 ]; [ 0; 1 ] ]);
    Alcotest.test_case "weights scale the removed constant" `Quick (fun () ->
        let weights = { Problem.w_unexplained = 3; w_errors = 1; w_size = 1 } in
        let p =
          Problem.make ~weights ~source:Fixtures.instance_i
            ~j:Fixtures.instance_j
            [ Fixtures.theta1; Fixtures.theta3 ]
        in
        let r = Preprocess.run p in
        Alcotest.check frac "constant 6" (Frac.of_int 6) r.Preprocess.constant);
  ]

(* --- random-problem properties ----------------------------------------- *)

(* Small random problems built from the appendix vocabulary with a pool of
   six candidate tgds (shared with the incremental differential suite);
   exact search must match brute-force enumeration and lower-bound the
   heuristics. *)
let problem_gen = Fixtures.selection_problem_gen

let brute_force p =
  let m = Problem.num_candidates p in
  let best = ref (Array.make m false) in
  let best_v = ref (Objective.value p !best) in
  for mask = 1 to (1 lsl m) - 1 do
    let s = Array.init m (fun i -> mask land (1 lsl i) <> 0) in
    let v = Objective.value p s in
    if Frac.(v < !best_v) then begin
      best := s;
      best_v := v
    end
  done;
  !best_v

let property_tests =
  let open QCheck2 in
  [
    Test.make ~name:"exact equals brute force" ~count:60 problem_gen (fun p ->
        Frac.equal (Objective.value p (Exact.solve p)) (brute_force p));
    Test.make ~name:"heuristics are sound upper bounds" ~count:60 problem_gen
      (fun p ->
        let opt = Objective.value p (Exact.solve p) in
        let greedy = Objective.value p (Greedy.solve p) in
        let cmd = (Cmd.solve p).Cmd.objective in
        let local = Objective.value p (Local_search.solve p) in
        Frac.(opt <= greedy) && Frac.(opt <= cmd) && Frac.(opt <= local))
    ;
    Test.make ~name:"cmd never exceeds the empty mapping" ~count:60 problem_gen
      (fun p -> Frac.((Cmd.solve p).Cmd.objective <= Objective.empty_value p));
    Test.make ~name:"preprocessing preserves objectives" ~count:40 problem_gen
      (fun p ->
        let r = Preprocess.run p in
        let m = Problem.num_candidates p in
        List.for_all
          (fun mask ->
            let s = Array.init m (fun i -> mask land (1 lsl i) <> 0) in
            Frac.equal (Objective.value p s) (Preprocess.full_value r s))
          [ 0; 1; (1 lsl m) - 1 ]);
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* --- SET COVER reduction ------------------------------------------------ *)

let example_cover =
  {
    Setcover.universe = [ "1"; "2"; "3"; "4"; "5" ];
    sets = [ ("A", [ "1"; "2"; "3" ]); ("B", [ "3"; "4" ]); ("C", [ "4"; "5" ]); ("D", [ "1"; "5" ]) ];
    budget = 2;
  }

let setcover_tests =
  [
    Alcotest.test_case "cover of size 2 exists" `Quick (fun () ->
        Alcotest.(check bool) "decide" true (Setcover.decide example_cover));
    Alcotest.test_case "no cover of size 1" `Quick (fun () ->
        Alcotest.(check bool)
          "decide" false
          (Setcover.decide { example_cover with Setcover.budget = 1 }));
    Alcotest.test_case "closed form matches the constructed problem" `Quick
      (fun () ->
        let red = Setcover.reduce example_cover in
        let p = red.Setcover.problem in
        let names = red.Setcover.set_names in
        for mask = 0 to (1 lsl Array.length names) - 1 do
          let selected =
            List.filteri
              (fun i _ -> mask land (1 lsl i) <> 0)
              (Array.to_list names)
          in
          let s =
            Array.init (Array.length names) (fun i -> mask land (1 lsl i) <> 0)
          in
          Alcotest.check frac
            (Printf.sprintf "mask %d" mask)
            (Setcover.closed_form example_cover ~selected)
            (Objective.value p s)
        done);
    Alcotest.test_case "Theorem 1 formula: hand-computed golden values" `Quick
      (fun () ->
        (* m = 2·budget = 4, |U| = 5, so F(M) = 5·(5 − |∪ R_i|) + 2|M|:
           F({})      = 5·5 + 0 = 25
           F({A})     = 5·(5−3) + 2 = 12   (A covers {1,2,3})
           F({B,C})   = 5·(5−3) + 4 = 14   (B∪C = {3,4,5})
           F({A,C})   = 5·0 + 4 = 4        (a minimum cover)
           F(all 4)   = 5·0 + 8 = 8 *)
        let red = Setcover.reduce example_cover in
        List.iter
          (fun (selected, expected) ->
            Alcotest.check frac
              (Printf.sprintf "F({%s})" (String.concat "," selected))
              (Frac.of_int expected)
              (Setcover.closed_form example_cover ~selected);
            let s =
              Array.map
                (fun n -> List.mem n selected)
                red.Setcover.set_names
            in
            Alcotest.check frac
              (Printf.sprintf "Eq.9 on reduction, {%s}"
                 (String.concat "," selected))
              (Frac.of_int expected)
              (Objective.value red.Setcover.problem s))
          [
            ([], 25);
            ([ "A" ], 12);
            ([ "B"; "C" ], 14);
            ([ "A"; "C" ], 4);
            ([ "A"; "B"; "C"; "D" ], 8);
          ]);
    Alcotest.test_case "optimal selection is a minimum cover" `Quick (fun () ->
        let red = Setcover.reduce example_cover in
        let best = Exact.solve red.Setcover.problem in
        let cover = Setcover.cover_of_selection red best in
        Alcotest.(check int) "2 sets" 2 (List.length cover);
        (* the chosen sets cover the universe *)
        let covered =
          List.concat_map
            (fun n -> List.assoc n example_cover.Setcover.sets)
            cover
          |> List.sort_uniq String.compare
        in
        Alcotest.(check int) "covers all 5" 5 (List.length covered));
    Alcotest.test_case "validate rejects foreign elements" `Quick (fun () ->
        let bad =
          { example_cover with Setcover.sets = [ ("Z", [ "9" ]) ] }
        in
        Alcotest.(check bool) "rejected" true (Setcover.validate bad <> Ok ()));
    Alcotest.test_case "F <= m iff cover within budget (both sides)" `Quick
      (fun () ->
        (* budget 3 also admits covers, e.g. {A, B, C} *)
        Alcotest.(check bool)
          "budget 3" true
          (Setcover.decide { example_cover with Setcover.budget = 3 }));
  ]

let setcover_property_tests =
  let open QCheck2 in
  let instance_gen =
    let open Gen in
    let* u_size = int_range 2 5 in
    let universe = List.init u_size string_of_int in
    let* n_sets = int_range 1 4 in
    let* sets =
      list_size (return n_sets)
        (let* mask = int_range 1 ((1 lsl u_size) - 1) in
         return (List.filteri (fun i _ -> mask land (1 lsl i) <> 0) universe))
    in
    let sets = List.mapi (fun i s -> (Printf.sprintf "S%d" i, s)) sets in
    let* budget = int_range 1 3 in
    return { Setcover.universe; sets; budget }
  in
  [
    Test.make ~name:"closed form equals Eq.9 on reduction instances" ~count:40
      instance_gen (fun inst ->
        let red = Setcover.reduce inst in
        let names = red.Setcover.set_names in
        List.for_all
          (fun mask ->
            let selected =
              List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list names)
            in
            let s =
              Array.init (Array.length names) (fun i -> mask land (1 lsl i) <> 0)
            in
            (* the literal Theorem 1 formula, computed independently; its
               [m] is the decision threshold 2·budget *)
            let m = 2 * inst.Setcover.budget in
            let covered =
              List.concat_map
                (fun n -> List.assoc n inst.Setcover.sets)
                selected
              |> List.sort_uniq String.compare |> List.length
            in
            let u = List.length (List.sort_uniq String.compare inst.Setcover.universe) in
            let formula =
              Frac.of_int (((m + 1) * (u - covered)) + (2 * List.length selected))
            in
            Frac.equal formula (Setcover.closed_form inst ~selected)
            && Frac.equal formula (Objective.value red.Setcover.problem s))
          (List.init (1 lsl Array.length names) Fun.id));
    Test.make ~name:"decide agrees with brute-force set cover" ~count:40
      instance_gen (fun inst ->
        let universe = List.sort_uniq String.compare inst.Setcover.universe in
        let n_sets = List.length inst.Setcover.sets in
        let brute =
          List.exists
            (fun mask ->
              let chosen =
                List.filteri (fun i _ -> mask land (1 lsl i) <> 0) inst.Setcover.sets
              in
              List.length chosen <= inst.Setcover.budget
              && List.sort_uniq String.compare
                   (List.concat_map snd chosen)
                 = universe)
            (List.init (1 lsl n_sets) Fun.id)
        in
        Setcover.decide inst = brute);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let anneal_tests =
  [
    Alcotest.test_case "anneal also flips to {theta3}" `Quick (fun () ->
        let p = extended_problem 5 in
        let sel = Anneal.solve p in
        Alcotest.(check (list int)) "theta3" [ 1 ] (Problem.indices_of_selection sel));
    Alcotest.test_case "anneal handles the empty problem" `Quick (fun () ->
        let p = Problem.make ~source:Fixtures.instance_i ~j:Fixtures.instance_j [] in
        Alcotest.(check int) "no candidates" 0 (Array.length (Anneal.solve p)));
    Alcotest.test_case "deterministic for a fixed seed" `Quick (fun () ->
        let p = extended_problem 3 in
        Alcotest.(check bool)
          "same" true
          (Anneal.solve p = Anneal.solve p));
    Alcotest.test_case "solve_multi with one chain equals solve" `Quick
      (fun () ->
        (* chain 0 keeps the base seed (Seed.derive s 0 = s) *)
        let p = extended_problem 5 in
        Alcotest.(check bool)
          "same" true
          (Anneal.solve p = Anneal.solve_multi ~chains:1 p));
    Alcotest.test_case "?seed overrides options.seed" `Quick (fun () ->
        let p = extended_problem 5 in
        Alcotest.(check bool)
          "same" true
          (Anneal.solve ~seed:7 p
          = Anneal.solve
              ~options:{ Anneal.default_options with Anneal.seed = 7 }
              p));
  ]

let anneal_property_tests =
  let open QCheck2 in
  [
    Test.make ~name:"anneal between exact and empty" ~count:40 problem_gen
      (fun p ->
        let v = Objective.value p (Anneal.solve p) in
        Frac.(Objective.value p (Exact.solve p) <= v)
        && Frac.(v <= Objective.empty_value p));
    Test.make ~name:"solve_multi with one chain equals solve" ~count:40
      problem_gen (fun p -> Anneal.solve p = Anneal.solve_multi ~chains:1 p);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let semantics_tests =
  [
    Alcotest.test_case "strict semantics caps theta3 coverage" `Quick
      (fun () ->
        let p =
          Problem.make ~semantics:Cover.Strict ~source:Fixtures.instance_i
            ~j:Fixtures.instance_j [ Fixtures.theta1; Fixtures.theta3 ]
        in
        (* under Strict, theta3 covers task(ML,Alice,111) only 2/3 and
           org(111,SAP) only 1/2: F({theta3}) = (4 - 2/3 - 1/2) + 2 + 4 *)
        Alcotest.check frac "{theta3} strict" (Frac.make 53 6)
          (Objective.value p (sel p [ 1 ])));
    Alcotest.test_case "generous semantics lifts theta1 to full coverage"
      `Quick (fun () ->
        let p =
          Problem.make ~semantics:Cover.Generous ~source:Fixtures.instance_i
            ~j:Fixtures.instance_j [ Fixtures.theta1; Fixtures.theta3 ]
        in
        (* theta1's null now counts: F({theta1}) = (4 - 1) + 1 + 3 = 7 *)
        Alcotest.check frac "{theta1} generous" (Frac.of_int 7)
          (Objective.value p (sel p [ 0 ])));
    Alcotest.test_case "corroborated is the default" `Quick (fun () ->
        let explicit =
          Problem.make ~semantics:Cover.Corroborated
            ~source:Fixtures.instance_i ~j:Fixtures.instance_j
            [ Fixtures.theta1; Fixtures.theta3 ]
        in
        let default = appendix_problem () in
        List.iter
          (fun idx ->
            Alcotest.check frac "same objective"
              (Objective.value default (sel default idx))
              (Objective.value explicit (sel explicit idx)))
          [ []; [ 0 ]; [ 1 ]; [ 0; 1 ] ]);
  ]

(* --- the Eq. 4 fast path ------------------------------------------------ *)

let full_candidates =
  let v = Fixtures.v in
  let open Logic in
  [
    (* proj -> org copies, all full *)
    Tgd.make ~label:"f1"
      ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
      ~head:[ Atom.make "org" [ v "P"; v "O" ] ]
      ();
    Tgd.make ~label:"f2"
      ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
      ~head:[ Atom.make "task" [ v "P"; v "E"; v "O" ] ]
      ();
    Tgd.make ~label:"f3"
      ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
      ~head:[ Atom.make "org" [ v "O"; v "O" ] ]
      ();
  ]

let full_j =
  Instance.of_tuples
    [
      Tuple.of_consts "task" [ "BigData"; "Bob"; "IBM" ];
      Tuple.of_consts "task" [ "ML"; "Alice"; "SAP" ];
      Tuple.of_consts "org" [ "BigData"; "IBM" ];
    ]

let full_problem () =
  Problem.make ~source:Fixtures.instance_i ~j:full_j full_candidates

let full_tests =
  [
    Alcotest.test_case "of_problem accepts full candidates" `Quick (fun () ->
        Alcotest.(check bool)
          "ok" true
          (Result.is_ok (Full.of_problem (full_problem ()))));
    Alcotest.test_case "of_problem rejects existentials" `Quick (fun () ->
        let p =
          Problem.make ~source:Fixtures.instance_i ~j:full_j [ Fixtures.theta1 ]
        in
        match Full.of_problem p with
        | Error msg ->
          Alcotest.(check bool)
            "mentions label" true
            (String.length msg > 0)
        | Ok _ -> Alcotest.fail "expected rejection");
    Alcotest.test_case "value agrees with the general objective" `Quick
      (fun () ->
        let p = full_problem () in
        match Full.of_problem p with
        | Error e -> Alcotest.fail e
        | Ok full ->
          for mask = 0 to 7 do
            let s = Array.init 3 (fun i -> mask land (1 lsl i) <> 0) in
            Alcotest.check frac
              (Printf.sprintf "mask %d" mask)
              (Objective.value p s) (Full.value full s)
          done);
    Alcotest.test_case "fast exact agrees with general exact" `Quick (fun () ->
        let p = full_problem () in
        match Full.of_problem p with
        | Error e -> Alcotest.fail e
        | Ok full ->
          Alcotest.check frac "same optimum"
            (Objective.value p (Exact.solve p))
            (Full.value full (Full.exact full)));
    Alcotest.test_case "fast greedy solution is sound" `Quick (fun () ->
        let p = full_problem () in
        match Full.of_problem p with
        | Error e -> Alcotest.fail e
        | Ok full ->
          let sel = Full.greedy full in
          Alcotest.(check bool)
            "never above empty" true
            Frac.(Full.value full sel <= Objective.empty_value p));
  ]

let full_property_tests =
  let open QCheck2 in
  (* random full problems over the proj vocabulary *)
  let gen =
    let mk rel vs = Relational.Tuple.of_consts rel vs in
    Gen.(
      let* src =
        list_size (int_range 1 5)
          (map
             (fun (a, b, c) ->
               mk "proj"
                 [ Printf.sprintf "p%d" a; Printf.sprintf "e%d" b; Printf.sprintf "o%d" c ])
             (triple (int_range 0 2) (int_range 0 2) (int_range 0 2)))
      in
      let* tgt =
        list_size (int_range 0 6)
          (map
             (fun (a, b) ->
               mk "org" [ Printf.sprintf "p%d" a; Printf.sprintf "o%d" b ])
             (pair (int_range 0 2) (int_range 0 2)))
      in
      return
        (Problem.make
           ~source:(Instance.of_tuples src)
           ~j:(Instance.of_tuples tgt)
           full_candidates))
  in
  [
    Test.make ~name:"fast exact = general exact on random full problems"
      ~count:60 gen (fun p ->
        match Full.of_problem p with
        | Error _ -> false
        | Ok full ->
          Frac.equal
            (Objective.value p (Exact.solve p))
            (Full.value full (Full.exact full)));
    Test.make ~name:"fast greedy = general greedy objective" ~count:60 gen
      (fun p ->
        match Full.of_problem p with
        | Error _ -> false
        | Ok full ->
          Frac.equal
            (Objective.value p (Greedy.solve p))
            (Full.value full (Full.greedy full)));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let invariant_property_tests =
  let open QCheck2 in
  [
    Test.make ~name:"marginal gain predicts the objective delta" ~count:60
      (Gen.pair problem_gen (Gen.int_range 0 1000)) (fun (p, pick) ->
        let m = Problem.num_candidates p in
        let sel = Array.init m (fun i -> (pick lsr i) land 1 = 1) in
        let c = pick mod m in
        if sel.(c) then true
        else begin
          let best = Objective.best_coverage p sel in
          let gain = Greedy.marginal_gain p ~best c in
          let before = Objective.value p sel in
          sel.(c) <- true;
          let after = Objective.value p sel in
          Frac.equal (Frac.sub before after) gain
        end);
    Test.make ~name:"cmd is deterministic" ~count:20 problem_gen (fun p ->
        let r1 = Cmd.solve p and r2 = Cmd.solve p in
        r1.Cmd.selection = r2.Cmd.selection
        && Frac.equal r1.Cmd.objective r2.Cmd.objective);
    Test.make ~name:"local search output is a 1-flip local optimum" ~count:30
      problem_gen (fun p ->
        let sel = Local_search.solve p in
        let v = Objective.value p sel in
        let m = Problem.num_candidates p in
        List.for_all
          (fun c ->
            sel.(c) <- not sel.(c);
            let v' = Objective.value p sel in
            sel.(c) <- not sel.(c);
            Frac.(v <= v'))
          (List.init m Fun.id));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let tune_tests =
  [
    Alcotest.test_case "with_weights rescales candidate costs" `Quick
      (fun () ->
        let p = appendix_problem () in
        let heavier =
          Problem.with_weights p
            { Problem.w_unexplained = 1; w_errors = 2; w_size = 3 }
        in
        (* theta1: 2·1 errors + 3·3 size = 11 *)
        Alcotest.check frac "theta1 cost" (Frac.of_int 11)
          heavier.Problem.cand_cost.(0);
        (* coverage degrees are untouched *)
        Alcotest.(check int)
          "covers unchanged"
          (Array.length p.Problem.covers.(0))
          (Array.length heavier.Problem.covers.(0)));
    Alcotest.test_case "with_weights validates" `Quick (fun () ->
        let p = appendix_problem () in
        Alcotest.(check bool)
          "rejects zero" true
          (match
             Problem.with_weights p
               { Problem.w_unexplained = 1; w_errors = 0; w_size = 1 }
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Alcotest.test_case "grid search finds a perfect-score triple" `Quick
      (fun () ->
        (* gold = the exact optimum under (1,1,1); since (1,1,1) is in the
           grid and first, the search can score |C| agreements with it *)
        let p = extended_problem 5 in
        let gold = Exact.solve p in
        let w = Tune.grid_search ~training:[ (p, gold) ] () in
        Alcotest.(check int)
          "perfect agreement"
          (Problem.num_candidates p)
          (Tune.score p ~gold w));
    Alcotest.test_case "grid search rejects empty inputs" `Quick (fun () ->
        let p = appendix_problem () in
        Alcotest.(check bool)
          "no training" true
          (match Tune.grid_search ~training:[] () with
          | exception Invalid_argument _ -> true
          | _ -> false);
        Alcotest.(check bool)
          "no grid" true
          (match
             Tune.grid_search ~grid:[] ~training:[ (p, [| false; false |]) ] ()
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Alcotest.test_case "default grid starts at the paper's weights" `Quick
      (fun () ->
        Alcotest.(check bool)
          "(1,1,1) first" true
          (List.hd Tune.default_grid = (1, 1, 1));
        Alcotest.(check int) "27 triples" 27 (List.length Tune.default_grid));
  ]

let edge_case_tests =
  [
    Alcotest.test_case "empty candidate set: all solvers agree" `Quick
      (fun () ->
        let p = Problem.make ~source:Fixtures.instance_i ~j:Fixtures.instance_j [] in
        Alcotest.(check int) "no candidates" 0 (Problem.num_candidates p);
        Alcotest.check frac "objective = |J|" (Frac.of_int 4)
          (Objective.value p [||]);
        Alcotest.(check int) "greedy" 0 (Array.length (Greedy.solve p));
        Alcotest.(check int) "exact" 0 (Array.length (Exact.solve p));
        let r = Cmd.solve p in
        Alcotest.(check int) "cmd" 0 (Array.length r.Cmd.selection);
        Alcotest.check frac "cmd objective" (Frac.of_int 4) r.Cmd.objective);
    Alcotest.test_case "empty data example: size decides" `Quick (fun () ->
        (* no tuples anywhere: every candidate only costs size, so the empty
           mapping is optimal *)
        let p =
          Problem.make ~source:Instance.empty ~j:Instance.empty
            [ Fixtures.theta1; Fixtures.theta3 ]
        in
        Alcotest.check frac "F({}) = 0" Frac.zero (Objective.value p (sel p []));
        Alcotest.(check (list int))
          "exact picks nothing" []
          (Problem.indices_of_selection (Exact.solve p)));
    Alcotest.test_case "exact candidate limit enforced" `Quick (fun () ->
        let p = appendix_problem () in
        Alcotest.(check bool)
          "raises a typed solver error" true
          (match Exact.solve ~max_candidates:1 p with
          | exception Solver_error.Error { solver = "exact"; _ } -> true
          | _ -> false));
    Alcotest.test_case "objective explains accessor" `Quick (fun () ->
        let p = appendix_problem () in
        Alcotest.check frac "tuple 0 by theta3" Frac.one
          (let s = sel p [ 1 ] in
           let best = Objective.best_coverage p s in
           Array.fold_left Frac.max Frac.zero best));
    Alcotest.test_case "setcover validate rejects zero budget" `Quick
      (fun () ->
        Alcotest.(check bool)
          "rejected" true
          (Setcover.validate
             { Setcover.universe = [ "a" ]; sets = [ ("S", [ "a" ]) ]; budget = 0 }
          <> Ok ()));
    (* cached construction of the appendix problem (cold + warm digests and
       table values) now lives in expect/e1_appendix.rtest's cached-registry
       test *)
  ]

let () =
  Alcotest.run "core"
    [
      ("objective", objective_tests);
      ("solvers", solver_agreement_tests);
      ("model-shape", model_shape_tests);
      ("preprocess", preprocess_tests);
      ("properties", property_tests);
      ("setcover", setcover_tests);
      ("setcover-properties", setcover_property_tests);
      ("anneal", anneal_tests);
      ("anneal-properties", anneal_property_tests);
      ("semantics", semantics_tests);
      ("full-fastpath", full_tests);
      ("full-fastpath-properties", full_property_tests);
      ("invariants", invariant_property_tests);
      ("tune", tune_tests);
      ("edge-cases", edge_case_tests);
    ]
