(* The machine-readable perf trajectory (lib/perf).

   Schema-validates the committed BENCH_9.json (required keys, monotone
   timestamps, finite positive ratios), pins the JSON round trip, and
   demonstrates that the regression gate flags an injected slowdown. *)

module Report = Perf.Report

let syn : Report.t =
  {
    Report.schema_version = 1;
    bench = 6;
    jobs = 4;
    kernels = [ { Report.k_name = "flip"; ns_per_run = 100.; k_at_ms = 1. } ];
    ratios = [ { Report.r_name = "flip-speedup"; value = 2. } ];
    pool =
      [
        {
          Report.p_name = "local-search";
          seq_ms = 10.;
          par_ms = 5.;
          speedup = 2.;
          identical = true;
          p_at_ms = 2.;
        };
      ];
    cache =
      Some
        {
          Report.uncached_ms = 5.;
          cold_ms = 6.;
          warm_ms = 1.;
          warm_speedup = 5.;
          hits = 2;
          misses = 4;
          evictions = 0;
          hit_rate = 0.25;
          bit_identical = true;
          c_at_ms = 3.;
        };
    telemetry =
      Some
        {
          Report.disabled_ms = 1.;
          enabled_ms = 1.1;
          overhead_pct = 10.;
          within_budget = false;
          t_at_ms = 4.;
        };
    server = None;
  }

let test_roundtrip () =
  match Report.of_json (Report.to_json syn) with
  | Ok r ->
    Alcotest.(check bool) "round-trips exactly" true (r = syn)
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_validate_clean () =
  Alcotest.(check (list string)) "no issues" [] (Report.validate syn)

let test_validate_catches_splicing () =
  (* timestamps out of order mean the file is not from one run *)
  let bad =
    {
      syn with
      Report.telemetry =
        Option.map
          (fun t -> { t with Report.t_at_ms = 0.5 })
          syn.Report.telemetry;
    }
  in
  Alcotest.(check bool) "non-monotone at_ms flagged" true
    (Report.validate bad <> [])

let test_validate_catches_bad_ratio () =
  let bad = { syn with Report.ratios = [ { r_name = "r"; value = 0. } ] } in
  Alcotest.(check bool) "non-positive ratio flagged" true
    (Report.validate bad <> [])

let test_gate_accepts_itself () =
  Alcotest.(check (list string))
    "self-gate is clean" []
    (Report.gate ~baseline:syn ~fresh:syn ())

let test_gate_band_edges () =
  (* exactly baseline/band is still within the band *)
  let fresh =
    { syn with Report.ratios = [ { r_name = "flip-speedup"; value = 2. /. 3. } ] }
  in
  Alcotest.(check (list string))
    "floor value passes" []
    (Report.gate ~band:3.0 ~baseline:syn ~fresh ())

let test_gate_flags_slowdown () =
  let fresh =
    {
      syn with
      Report.kernels =
        [ { Report.k_name = "flip"; ns_per_run = 1000.; k_at_ms = 1. } ];
      ratios = [ { Report.r_name = "flip-speedup"; value = 0.5 } ];
    }
  in
  let violations = Report.gate ~band:3.0 ~baseline:syn ~fresh () in
  Alcotest.(check int) "kernel and ratio both flagged" 2
    (List.length violations)

let test_gate_flags_lost_identity () =
  let fresh =
    {
      syn with
      Report.pool =
        List.map
          (fun p -> { p with Report.identical = false })
          syn.Report.pool;
    }
  in
  Alcotest.(check bool) "identity loss flagged" true
    (Report.gate ~baseline:syn ~fresh () <> [])

let test_gate_flags_missing_ratio () =
  let fresh = { syn with Report.ratios = [ { r_name = "other"; value = 9. } ] } in
  Alcotest.(check bool) "missing baseline ratio flagged" true
    (Report.gate ~baseline:syn ~fresh () <> [])

(* --- schema v2: the server section --------------------------------------- *)

let syn_server : Report.t =
  {
    Report.schema_version = 2;
    bench = 7;
    jobs = 4;
    kernels = [];
    ratios =
      [
        { Report.r_name = "server.throughput-rps"; value = 800. };
        { Report.r_name = "server.p50-rps"; value = 200. };
        { Report.r_name = "server.p99-rps"; value = 25. };
      ];
    pool = [];
    cache = None;
    telemetry = None;
    server =
      Some
        {
          Report.requests = 1000;
          concurrency = 8;
          p50_ms = 5.;
          p99_ms = 40.;
          mean_ms = 9.;
          throughput_rps = 800.;
          shed = 0;
          coalesced = 750;
          s_identical = true;
          s_at_ms = 1500.;
        };
  }

let test_v2_server_roundtrip () =
  match Report.of_json (Report.to_json syn_server) with
  | Ok r -> Alcotest.(check bool) "round-trips exactly" true (r = syn_server)
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_v2_server_validates () =
  Alcotest.(check (list string)) "no issues" [] (Report.validate syn_server)

let test_v1_rejects_server_section () =
  let bad = { syn with Report.server = syn_server.Report.server } in
  Alcotest.(check bool) "server section is v2-only" true
    (Report.validate bad <> [])

let test_v2_requires_some_section () =
  let bad = { syn_server with Report.server = None } in
  Alcotest.(check bool) "kernel-less report needs a server section" true
    (Report.validate bad <> [])

let test_v2_flags_inverted_percentiles () =
  let bad =
    {
      syn_server with
      Report.server =
        Option.map
          (fun s -> { s with Report.p50_ms = 50.; p99_ms = 5. })
          syn_server.Report.server;
    }
  in
  Alcotest.(check bool) "p50 > p99 flagged" true (Report.validate bad <> [])

let test_gate_requires_server_section () =
  let fresh = { syn_server with Report.server = None } in
  Alcotest.(check bool) "fresh must keep the baseline's sections" true
    (Report.gate ~baseline:syn_server ~fresh () <> [])

let test_gate_flags_lost_server_identity () =
  let fresh =
    {
      syn_server with
      Report.server =
        Option.map
          (fun s -> { s with Report.s_identical = false })
          syn_server.Report.server;
    }
  in
  Alcotest.(check bool) "response identity loss flagged" true
    (Report.gate ~baseline:syn_server ~fresh () <> [])

let test_gate_flags_latency_regression () =
  let fresh =
    {
      syn_server with
      Report.ratios =
        List.map
          (fun r ->
            if r.Report.r_name = "server.p99-rps" then
              { r with Report.value = r.Report.value /. 10. }
            else r)
          syn_server.Report.ratios;
    }
  in
  Alcotest.(check bool) "10x p99 regression flagged" true
    (Report.gate ~band:3.0 ~baseline:syn_server ~fresh () <> [])

(* --- the committed trajectory -------------------------------------------- *)

(* dune runs tests in _build/default/test; walk up to the repo root. *)
let find_bench_json () =
  let rec up dir n =
    if n < 0 then None
    else
      let candidate = Filename.concat dir "BENCH_9.json" in
      if Sys.file_exists candidate then Some candidate
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else up parent (n - 1)
  in
  up (Sys.getcwd ()) 6

let test_committed_report_validates () =
  match find_bench_json () with
  | None -> () (* no baseline checked out — nothing to validate *)
  | Some path -> (
    match Report.load path with
    | Error msg -> Alcotest.failf "BENCH_9.json did not load: %s" msg
    | Ok r ->
      Alcotest.(check (list string)) "schema-clean" [] (Report.validate r);
      Alcotest.(check int) "trajectory index" 9 r.Report.bench)

let test_committed_report_self_gates () =
  match find_bench_json () with
  | None -> ()
  | Some path -> (
    match Report.load path with
    | Error msg -> Alcotest.failf "BENCH_9.json did not load: %s" msg
    | Ok r -> (
      Alcotest.(check (list string))
        "baseline gates itself" []
        (Report.gate ~baseline:r ~fresh:r ());
      (* and an injected 10x slowdown across every kernel is caught *)
      let slowed =
        {
          r with
          Report.kernels =
            List.map
              (fun k -> { k with Report.ns_per_run = k.Report.ns_per_run *. 10. })
              r.Report.kernels;
        }
      in
      match Report.gate ~baseline:r ~fresh:slowed () with
      | [] -> Alcotest.fail "a 10x slowdown must not pass the gate"
      | _ -> ()))

let () =
  Alcotest.run "bench-json"
    [
      ( "schema",
        [
          Alcotest.test_case "JSON round trip" `Quick test_roundtrip;
          Alcotest.test_case "synthetic report validates" `Quick
            test_validate_clean;
          Alcotest.test_case "non-monotone timestamps flagged" `Quick
            test_validate_catches_splicing;
          Alcotest.test_case "non-positive ratios flagged" `Quick
            test_validate_catches_bad_ratio;
        ] );
      ( "gate",
        [
          Alcotest.test_case "accepts itself" `Quick test_gate_accepts_itself;
          Alcotest.test_case "band edges are inclusive" `Quick
            test_gate_band_edges;
          Alcotest.test_case "flags an injected slowdown" `Quick
            test_gate_flags_slowdown;
          Alcotest.test_case "flags lost pool identity" `Quick
            test_gate_flags_lost_identity;
          Alcotest.test_case "flags a missing ratio" `Quick
            test_gate_flags_missing_ratio;
        ] );
      ( "server-v2",
        [
          Alcotest.test_case "v2 JSON round trip" `Quick
            test_v2_server_roundtrip;
          Alcotest.test_case "v2 server report validates" `Quick
            test_v2_server_validates;
          Alcotest.test_case "v1 rejects a server section" `Quick
            test_v1_rejects_server_section;
          Alcotest.test_case "v2 needs kernels or server" `Quick
            test_v2_requires_some_section;
          Alcotest.test_case "inverted percentiles flagged" `Quick
            test_v2_flags_inverted_percentiles;
          Alcotest.test_case "gate keeps the server section" `Quick
            test_gate_requires_server_section;
          Alcotest.test_case "gate flags lost response identity" `Quick
            test_gate_flags_lost_server_identity;
          Alcotest.test_case "gate flags a p99 regression" `Quick
            test_gate_flags_latency_regression;
        ] );
      ( "committed",
        [
          Alcotest.test_case "BENCH_9.json is schema-clean" `Quick
            test_committed_report_validates;
          Alcotest.test_case "baseline self-gates and catches 10x" `Quick
            test_committed_report_self_gates;
        ] );
    ]
