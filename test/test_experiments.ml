open Util

let frac = Alcotest.testable Frac.pp Frac.equal

(* jobs:1 — the smoke runs stay sequential and never spawn the pool *)
let ctx = Experiments.Common.Ctx.create ~jobs:1 ()

let registry_tests =
  [
    Alcotest.test_case "all fifteen experiments are registered" `Quick
      (fun () ->
        Alcotest.(check int)
          "fifteen" 15
          (List.length Experiments.Registry.all);
        List.iteri
          (fun i (id, _, _) ->
            Alcotest.(check string)
              "sequential ids"
              (Printf.sprintf "E%d" (i + 1))
              id)
          Experiments.Registry.all);
    Alcotest.test_case "find is case-insensitive" `Quick (fun () ->
        Alcotest.(check bool) "e1" true (Experiments.Registry.find "e1" <> None);
        Alcotest.(check bool) "E12" true (Experiments.Registry.find "E12" <> None);
        Alcotest.(check bool) "bogus" true (Experiments.Registry.find "E99" = None));
  ]

let e1_tests =
  [
    Alcotest.test_case "appendix gold values" `Quick (fun () ->
        let values = Experiments.E1_appendix_example.appendix_values () in
        let expected =
          [
            ("{}", Frac.of_int 4);
            ("{theta1}", Frac.make 22 3);
            ("{theta3}", Frac.of_int 8);
            ("{theta1,theta3}", Frac.of_int 12);
          ]
        in
        List.iter2
          (fun (name, got) (name', want) ->
            Alcotest.(check string) "order" name' name;
            Alcotest.check frac name want got)
          values expected);
    Alcotest.test_case "E1 table has four rows" `Quick (fun () ->
        let t = Experiments.E1_appendix_example.run ctx in
        Alcotest.(check int) "rows" 4 (List.length t.Experiments.Table.rows));
  ]

(* The cheap experiments run end-to-end in tests (the sweeps would slow the
   suite down; they are exercised by the bench binary). *)
let smoke_tests =
  [
    Alcotest.test_case "E2 renders" `Quick (fun () ->
        let t = Experiments.E2_parameters.run ctx in
        Alcotest.(check bool)
          "non-empty" true
          (String.length (Experiments.Table.to_string t) > 0));
    Alcotest.test_case "E9 reports no mismatch" `Quick (fun () ->
        let t = Experiments.E9_setcover.run ~count:4 ctx in
        List.iter
          (fun row ->
            match List.rev row with
            | verdict :: _ -> Alcotest.(check string) "ok" "ok" verdict
            | [] -> Alcotest.fail "empty row")
          t.Experiments.Table.rows);
    Alcotest.test_case "E11 appendix degrees per semantics" `Quick (fun () ->
        let t = Experiments.E11_semantics.run ~seeds:[ 1 ] ctx in
        match t.Experiments.Table.rows with
        | [ corr; strict; generous ] ->
          Alcotest.(check (list string))
            "corroborated" [ "2/3"; "1" ]
            [ List.nth corr 1; List.nth corr 2 ];
          Alcotest.(check (list string))
            "strict" [ "2/3"; "2/3" ]
            [ List.nth strict 1; List.nth strict 2 ];
          Alcotest.(check (list string))
            "generous" [ "1"; "1" ]
            [ List.nth generous 1; List.nth generous 2 ]
        | _ -> Alcotest.fail "expected three rows");
    Alcotest.test_case "table renderer aligns ragged rows" `Quick (fun () ->
        let t =
          Experiments.Table.make ~id:"T" ~title:"t" ~header:[ "a"; "b" ]
            [ [ "1" ]; [ "22"; "333"; "4444" ] ]
        in
        let s = Experiments.Table.to_string t in
        Alcotest.(check bool) "renders" true (String.length s > 0));
  ]

let sweep_tests =
  [
    Alcotest.test_case "tiny noise sweep runs end-to-end" `Quick (fun () ->
        let t =
          Experiments.Noise_sweep.run ctx ~levels:[ 0; 50 ] ~seeds:[ 1 ]
            ~solvers:[ Experiments.Common.Greedy_solver ] ~id:"Etest"
            Experiments.Noise_sweep.Errors
        in
        Alcotest.(check int) "two rows" 2 (List.length t.Experiments.Table.rows);
        List.iter
          (fun row ->
            Alcotest.(check int) "level + 2 metrics" 3 (List.length row))
          t.Experiments.Table.rows);
  ]

let () =
  Alcotest.run "experiments"
    [
      ("registry", registry_tests);
      ("e1", e1_tests);
      ("smoke", smoke_tests);
      ("sweeps", sweep_tests);
    ]
