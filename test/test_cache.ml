(* The evaluation cache: LRU bookkeeping, single-flight accounting, disk
   persistence, and — the contract everything else leans on — bit-identity
   of the cached pipeline with the uncached one, per registered solver. *)

open Core

(* --- helpers ------------------------------------------------------------ *)

let appendix_candidates = [ Fixtures.theta1; Fixtures.theta3 ]

let make_problem ?cache () =
  Problem.make ?cache ~source:Fixtures.instance_i ~j:Fixtures.instance_j
    appendix_candidates

(* A distinct selection key per index; the compute closure records calls. *)
let probe cache calls ~key =
  Cache.selection cache ~solver:"probe" ~seed:None ~problem_key:key (fun () ->
      incr calls;
      [| true |])

(* Per-test cache directories under the build sandbox; wiped up front so a
   previous run's files can't satisfy (or confuse) this run's lookups. *)
let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir = Printf.sprintf "cache-test-dir-%d" !n in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
    dir

(* --- accounting and LRU ------------------------------------------------- *)

let test_hit_miss_accounting () =
  let cache = Cache.create () in
  let calls = ref 0 in
  for _ = 1 to 5 do
    ignore (probe cache calls ~key:"k1")
  done;
  let s = Cache.stats cache in
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "four hits" 4 s.Cache.hits;
  Alcotest.(check int) "no evictions" 0 s.Cache.evictions

let test_lru_eviction_order () =
  let cache = Cache.create ~capacity:2 () in
  let calls = ref 0 in
  ignore (probe cache calls ~key:"k1");
  ignore (probe cache calls ~key:"k2");
  (* touch k1 so k2 becomes the least recently used *)
  ignore (probe cache calls ~key:"k1");
  ignore (probe cache calls ~key:"k3");
  Alcotest.(check int) "one eviction" 1 (Cache.stats cache).Cache.evictions;
  let before = !calls in
  ignore (probe cache calls ~key:"k1");
  ignore (probe cache calls ~key:"k3");
  Alcotest.(check int) "k1 and k3 still cached" before !calls;
  ignore (probe cache calls ~key:"k2");
  Alcotest.(check int) "k2 was the victim" (before + 1) !calls

let test_single_flight_parallel () =
  (* 48 lookups of 6 distinct keys hammered from several domains: misses
     must equal the distinct keys and hits the rest, for any pool size —
     the jobs-invariance contract. *)
  let run jobs =
    let cache = Cache.create () in
    let calls = Atomic.make 0 in
    let task i =
      let key = Printf.sprintf "k%d" (i mod 6) in
      Cache.selection cache ~solver:"probe" ~seed:None ~problem_key:key
        (fun () ->
          Atomic.incr calls;
          [| i mod 6 = 0 |])
    in
    let results =
      Parallel.Pool.with_pool ~jobs (fun pool ->
          Parallel.Pool.parallel_map pool task (Array.init 48 Fun.id))
    in
    Array.iteri
      (fun i sel ->
        Alcotest.(check bool)
          (Printf.sprintf "result %d correct under jobs=%d" i jobs)
          (i mod 6 = 0) sel.(0))
      results;
    (Cache.stats cache, Atomic.get calls)
  in
  List.iter
    (fun jobs ->
      let s, calls = run jobs in
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d: misses = distinct keys" jobs)
        6 s.Cache.misses;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d: one computation per distinct key" jobs)
        6 calls;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d: hits = the rest" jobs)
        42 s.Cache.hits)
    [ 1; 4 ]

(* --- problem construction through the cache ----------------------------- *)

let test_problem_bit_identity () =
  let plain = make_problem () in
  let cache = Cache.create () in
  let cold = make_problem ~cache () in
  let warm = make_problem ~cache () in
  let key = Problem.digest plain in
  Alcotest.(check string) "cold digest" key (Problem.digest cold);
  Alcotest.(check string) "warm digest" key (Problem.digest warm);
  let s = Cache.stats cache in
  (* cold build: one stats analysis plus one chase-tier entry per candidate *)
  Alcotest.(check int)
    "one analysis + one chase per candidate"
    (2 * List.length appendix_candidates)
    s.Cache.misses;
  Alcotest.(check int)
    "warm rebuild all hits" (List.length appendix_candidates)
    s.Cache.hits

let test_reindexing () =
  (* One cached analysis serves a candidate at any list position. *)
  let cache = Cache.create () in
  ignore (make_problem ~cache ());
  let swapped =
    Problem.make ~cache ~source:Fixtures.instance_i ~j:Fixtures.instance_j
      [ Fixtures.theta3; Fixtures.theta1 ]
  in
  (* 2 stats + 2 chase-tier misses from the first build; the swapped
     rebuild recomputes nothing *)
  Alcotest.(check int)
    "swapped order is all hits" 4 (Cache.stats cache).Cache.misses;
  Array.iteri
    (fun i (s : Cover.tgd_stats) ->
      Alcotest.(check int) (Printf.sprintf "stats %d re-indexed" i) i
        s.Cover.index)
    swapped.Problem.stats;
  Alcotest.(check string) "swapped labels follow the list"
    Fixtures.theta3.Logic.Tgd.label
    swapped.Problem.candidates.(0).Logic.Tgd.label

(* Per-solver cache-on/off bit-identity (cold and warm, every registry
   entry) is pinned declaratively by expect/e1_appendix.rtest's
   cached-registry test and the expect/cache_identity.rtest corpus replays. *)

let test_cached_selection_is_a_copy () =
  let cache = Cache.create () in
  let sel =
    Cache.selection cache ~solver:"probe" ~seed:None ~problem_key:"k"
      (fun () -> [| true; false |])
  in
  sel.(0) <- false;
  let again =
    Cache.selection cache ~solver:"probe" ~seed:None ~problem_key:"k"
      (fun () -> Alcotest.fail "recomputed despite a warm cache")
  in
  Alcotest.(check (array bool)) "mutation did not reach the cache"
    [| true; false |] again

(* --- disk persistence --------------------------------------------------- *)

let test_disk_reload_stats () =
  let dir = fresh_dir () in
  let plain = make_problem () in
  let cache = Cache.create ~dir () in
  ignore (make_problem ~cache ());
  (* a fresh cache over the same directory: no recomputation, same bits *)
  let reloaded = Cache.create ~dir () in
  let relit = make_problem ~cache:reloaded () in
  let s = Cache.stats reloaded in
  Alcotest.(check int) "all served from disk" 0 s.Cache.misses;
  Alcotest.(check int)
    "disk reads count as hits" (List.length appendix_candidates)
    s.Cache.hits;
  Alcotest.(check string) "reloaded problem bit-identical"
    (Problem.digest plain) (Problem.digest relit)

let test_disk_reload_selection () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let calls = ref 0 in
  let expected = probe cache calls ~key:"pk" in
  let reloaded = Cache.create ~dir () in
  let got =
    Cache.selection reloaded ~solver:"probe" ~seed:None ~problem_key:"pk"
      (fun () -> Alcotest.fail "recomputed despite the disk tier")
  in
  Alcotest.(check (array bool)) "selection reloaded from disk" expected got

let test_disk_corruption_recomputes () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let calls = ref 0 in
  ignore (probe cache calls ~key:"pk");
  (* clobber every cache file, then reload: decode fails, computes again *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".cache" then
        Out_channel.with_open_bin (Filename.concat dir f) (fun oc ->
            Out_channel.output_string oc "garbage"))
    (Sys.readdir dir);
  let reloaded = Cache.create ~dir () in
  let got = probe reloaded calls ~key:"pk" in
  Alcotest.(check int) "recomputed once" 2 !calls;
  Alcotest.(check (array bool)) "correct result after corruption" [| true |] got;
  Alcotest.(check int)
    "corrupt file is a miss" 1 (Cache.stats reloaded).Cache.misses

(* --- experiments plumbing ----------------------------------------------- *)

let test_experiments_cache_identity () =
  let scenario =
    Ibench.Generator.generate
      (Experiments.Common.noise_config ~seed:3 ~pi_corresp:20 ~pi_errors:10
         ~pi_unexplained:10 ())
  in
  let solve ctx =
    let p = Experiments.Common.problem_of_scenario ctx scenario in
    ( p,
      Experiments.Common.run_solver ctx Experiments.Common.Greedy_solver
        scenario p )
  in
  let plain, out_plain = Experiments.Common.Ctx.with_ctx ~jobs:1 solve in
  let cache = Cache.create () in
  let cached, out_cached =
    Experiments.Common.Ctx.with_ctx ~cache ~jobs:1 solve
  in
  Alcotest.(check string) "problem identical through Common"
    (Problem.digest plain) (Problem.digest cached);
  Alcotest.(check (array bool))
    "selection identical through Common" out_plain.Experiments.Common.selection
    out_cached.Experiments.Common.selection;
  Alcotest.(check bool)
    "cache was exercised" true
    ((Cache.stats cache).Cache.misses > 0)

let () =
  Alcotest.run "cache"
    [
      ( "accounting",
        [
          Alcotest.test_case "misses count computations, hits the rest" `Quick
            test_hit_miss_accounting;
          Alcotest.test_case "LRU evicts the least recently used" `Quick
            test_lru_eviction_order;
          Alcotest.test_case "single-flight totals are jobs-invariant" `Quick
            test_single_flight_parallel;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "cached problem equals uncached" `Quick
            test_problem_bit_identity;
          Alcotest.test_case "cached stats re-index per candidate list" `Quick
            test_reindexing;
          Alcotest.test_case "returned selections are private copies" `Quick
            test_cached_selection_is_a_copy;
          Alcotest.test_case "Experiments.Common honours the shared cache"
            `Quick test_experiments_cache_identity;
        ] );
      ( "disk",
        [
          Alcotest.test_case "candidate stats reload from disk" `Quick
            test_disk_reload_stats;
          Alcotest.test_case "selections reload from disk" `Quick
            test_disk_reload_selection;
          Alcotest.test_case "corrupt files recompute and self-heal" `Quick
            test_disk_corruption_recomputes;
        ] );
    ]
