(* The mapping-selection service (lib/server).

   Exercises each layer without a process boundary: protocol codecs,
   admission-queue shedding, engine determinism, digest coalescing on the
   cache's single-flight selection tier (jobs 1 and 4 must both report
   exactly one solver invocation for N identical requests), Cache.sync
   repair, deadline enforcement, and one in-process socket round trip
   against the real event loop. *)

module Protocol = Server.Protocol
module Json = Util.Json

(* a generator seed whose case is a mapping scenario (not SET COVER) *)
let mapping_seed =
  let rec find s =
    match (Fuzz.Gen.case ~seed:s).Fuzz.Case.payload with
    | Fuzz.Case.Mapping _ -> s
    | Fuzz.Case.Setcover _ | Fuzz.Case.Multihop _ -> find (s + 1)
  in
  find 7

let setcover_seed =
  let rec find s =
    match (Fuzz.Gen.case ~seed:s).Fuzz.Case.payload with
    | Fuzz.Case.Setcover _ -> s
    | Fuzz.Case.Mapping _ | Fuzz.Case.Multihop _ -> find (s + 1)
  in
  find 0

let solve_frame ?(id = "x") ?(solver = "greedy") ?(seed = 0) case_seed =
  Printf.sprintf
    {|{"id":%S,"method":"solve","params":{"case_seed":%d,"solver":%S,"seed":%d}}|}
    id case_seed solver seed

let parse_ok frame =
  match Protocol.parse_request frame with
  | Ok req -> req
  | Error resp ->
    Alcotest.failf "frame rejected: %s" (Protocol.render_response resp)

(* --- protocol ------------------------------------------------------------ *)

let test_parse_ping () =
  let req = parse_ok {|{"id": "a", "method": "ping"}|} in
  Alcotest.(check bool) "id echoed" true (req.Protocol.id = Json.Str "a");
  Alcotest.(check bool) "call" true (req.Protocol.call = Protocol.Ping)

let test_parse_solve () =
  let req = parse_ok (solve_frame ~id:"r1" ~seed:9 42) in
  match req.Protocol.call with
  | Protocol.Solve p ->
    Alcotest.(check bool) "scenario" true (p.Protocol.scenario = Protocol.Case_seed 42);
    Alcotest.(check string) "solver" "greedy" p.Protocol.solver;
    Alcotest.(check (option int)) "seed" (Some 9) p.Protocol.seed;
    Alcotest.(check bool) "no deadline" true (p.Protocol.deadline_ms = None)
  | _ -> Alcotest.fail "expected a solve call"

let error_kind frame =
  match Protocol.parse_request frame with
  | Ok _ -> Alcotest.failf "frame accepted: %s" frame
  | Error (Protocol.Error { kind; _ }) -> kind
  | Error (Protocol.Result _) -> Alcotest.fail "error expected"

let test_parse_rejections () =
  (match error_kind "no json" with
  | Protocol.Parse_error { line; column } ->
    Alcotest.(check int) "line" 1 line;
    Alcotest.(check bool) "column positioned" true (column >= 1)
  | _ -> Alcotest.fail "expected parse_error");
  Alcotest.(check string) "unknown method" "unknown_method"
    (Protocol.kind_label (error_kind {|{"id":"a","method":"nope"}|}));
  (* a typo'd field must be rejected, not silently ignored *)
  Alcotest.(check string) "unknown params field" "invalid_request"
    (Protocol.kind_label
       (error_kind
          {|{"id":"a","method":"solve","params":{"case_seed":1,"solver":"greedy","seeed":1}}|}));
  Alcotest.(check string) "two scenarios" "invalid_request"
    (Protocol.kind_label
       (error_kind
          {|{"id":"a","method":"solve","params":{"case_seed":1,"file":"x","solver":"greedy"}}|}));
  Alcotest.(check string) "missing id" "invalid_request"
    (Protocol.kind_label (error_kind {|{"method":"ping"}|}))

let test_error_id_echo () =
  match Protocol.parse_request {|{"id":"r9","method":"nope"}|} with
  | Error resp ->
    Alcotest.(check bool) "id echoed into the error" true
      (Protocol.response_id resp = Json.Str "r9")
  | Ok _ -> Alcotest.fail "expected rejection"

let solve_params frame =
  match (parse_ok frame).Protocol.call with
  | Protocol.Solve p -> p
  | _ -> Alcotest.fail "expected solve"

let test_solve_key () =
  let a = Protocol.solve_key (solve_params (solve_frame ~id:"r1" 42)) in
  let b = Protocol.solve_key (solve_params (solve_frame ~id:"r2" 42)) in
  let c = Protocol.solve_key (solve_params (solve_frame ~id:"r1" 43)) in
  let d = Protocol.solve_key (solve_params (solve_frame ~id:"r1" ~solver:"local" 42)) in
  Alcotest.(check string) "id does not enter the key" a b;
  Alcotest.(check bool) "scenario enters the key" true (a <> c);
  Alcotest.(check bool) "solver enters the key" true (a <> d)

(* --- batcher ------------------------------------------------------------- *)

let test_batcher_sheds_and_preserves_order () =
  let b = Server.Batcher.create ~capacity:3 in
  Alcotest.(check bool) "1" true (Server.Batcher.try_add b 1);
  Alcotest.(check bool) "2" true (Server.Batcher.try_add b 2);
  Alcotest.(check bool) "3" true (Server.Batcher.try_add b 3);
  Alcotest.(check bool) "full queue sheds" false (Server.Batcher.try_add b 4);
  Alcotest.(check (list int)) "fifo drain" [ 1; 2 ] (Server.Batcher.drain ~max:2 b);
  Alcotest.(check bool) "slot freed" true (Server.Batcher.try_add b 5);
  Alcotest.(check (list int)) "rest" [ 3; 5 ] (Server.Batcher.drain ~max:10 b);
  Alcotest.(check (list int)) "empty" [] (Server.Batcher.drain ~max:1 b)

(* --- engine -------------------------------------------------------------- *)

let body_string resp = Protocol.render_response resp

let test_engine_deterministic () =
  let engine = Server.Engine.create () in
  let req = parse_ok (solve_frame mapping_seed) in
  let a = body_string (Server.Engine.handle engine req) in
  let b = body_string (Server.Engine.handle engine req) in
  Alcotest.(check string) "same request, same bytes (warm vs cold)" a b;
  (* and a fresh engine (cold cache) produces the same bytes again *)
  let c = body_string (Server.Engine.handle (Server.Engine.create ()) req) in
  Alcotest.(check string) "cache state invisible in bytes" a c

let test_engine_typed_errors () =
  let engine = Server.Engine.create () in
  let kind frame =
    match Server.Engine.handle engine (parse_ok frame) with
    | Protocol.Error { kind; _ } -> Protocol.kind_label kind
    | Protocol.Result _ -> Alcotest.fail "expected a typed error"
  in
  Alcotest.(check string) "unknown solver" "unknown_solver"
    (kind (solve_frame ~solver:"simplex" mapping_seed));
  Alcotest.(check string) "set cover unsupported" "unsupported_case"
    (kind (solve_frame setcover_seed));
  Alcotest.(check string) "missing file" "bad_scenario"
    (kind
       {|{"id":"a","method":"solve","params":{"file":"/nonexistent.doc","solver":"greedy"}}|});
  let s = Server.Engine.stats engine in
  Alcotest.(check int) "errors counted" 3 s.Server.Engine.errors;
  Alcotest.(check int) "no solver ran" 0 s.Server.Engine.solves

(* --- coalescing ---------------------------------------------------------- *)

let run_identical ~jobs ~n =
  let engine = Server.Engine.create () in
  let frames = List.init n (fun i -> solve_frame ~id:(Printf.sprintf "r%d" i) mapping_seed) in
  let out = ref [] in
  let lock = Mutex.create () in
  let jobs_list =
    List.map
      (fun frame ->
        let req = parse_ok frame in
        {
          Server.Scheduler.key = Protocol.solve_key (solve_params frame);
          request = req;
          send =
            (fun line ->
              Mutex.lock lock;
              out := line :: !out;
              Mutex.unlock lock);
          deadline_at_ns = None;
        })
      frames
  in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      Server.Scheduler.run_batch engine ~pool jobs_list);
  (engine, List.rev !out)

let check_coalesced ~jobs () =
  let n = 8 in
  let engine, responses = run_identical ~jobs ~n in
  Alcotest.(check int) "every request answered" n (List.length responses);
  let bodies =
    List.map
      (fun line ->
        match Json.parse_line line with
        | Ok j -> Json.to_string (Option.get (Json.member "result" j))
        | Error _ -> Alcotest.failf "bad frame %s" line)
      responses
  in
  List.iter
    (fun b -> Alcotest.(check string) "identical bodies" (List.hd bodies) b)
    bodies;
  let s = Server.Engine.stats engine in
  Alcotest.(check int) "exactly one solver invocation" 1 s.Server.Engine.solves;
  Alcotest.(check int) "the rest coalesced" (n - 1) s.Server.Engine.coalesced

let test_coalescing_jobs1 () = check_coalesced ~jobs:1 ()

let test_coalescing_jobs4 () = check_coalesced ~jobs:4 ()

(* the cache tier underneath: n racing lookups of one key = one compute,
   one miss, n-1 hits — the jobs-invariant accounting contract *)
let test_selection_single_flight () =
  let cache = Cache.create () in
  let n = 4 in
  let runs = Atomic.make 0 in
  let gate = Atomic.make 0 in
  let worker () =
    Atomic.incr gate;
    while Atomic.get gate < n do
      Domain.cpu_relax ()
    done;
    Cache.selection cache ~solver:"test" ~seed:None ~problem_key:"k"
      (fun () ->
        Atomic.incr runs;
        Unix.sleepf 0.02;
        [| true; false |])
  in
  let domains = List.init n (fun _ -> Domain.spawn worker) in
  let results = List.map Domain.join domains in
  List.iter
    (fun r ->
      Alcotest.(check bool) "same selection" true (r = [| true; false |]))
    results;
  Alcotest.(check int) "compute ran once" 1 (Atomic.get runs);
  let s = Cache.stats cache in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "rest are hits" (n - 1) s.Cache.hits

(* --- deadlines ----------------------------------------------------------- *)

let test_deadline_expired_jobs_not_solved () =
  let engine = Server.Engine.create () in
  let frame = solve_frame mapping_seed in
  let out = ref [] in
  let job deadline =
    {
      Server.Scheduler.key = Protocol.solve_key (solve_params frame);
      request = parse_ok frame;
      send = (fun line -> out := line :: !out);
      deadline_at_ns = deadline;
    }
  in
  let past = Int64.sub (Util.Timer.now_ns ()) 1_000_000L in
  Parallel.Pool.with_pool ~jobs:1 (fun pool ->
      Server.Scheduler.run_batch engine ~pool [ job (Some past); job None ]);
  Alcotest.(check int) "both answered" 2 (List.length !out);
  let kinds =
    List.filter_map
      (fun line ->
        Option.bind (Result.to_option (Json.parse_line line)) (fun j ->
            Option.bind (Json.member "error" j) (fun e ->
                Option.bind (Json.member "kind" e) Json.to_str)))
      !out
  in
  Alcotest.(check (list string)) "expired one got the typed error"
    [ "deadline_exceeded" ] kinds;
  Alcotest.(check int) "live one solved" 1
    (Server.Engine.stats engine).Server.Engine.solves

(* --- Cache.sync ---------------------------------------------------------- *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let test_cache_sync_repairs_disk_tier () =
  let dir = temp_dir "serve_sync" in
  let cache = Cache.create ~dir () in
  let engine = Server.Engine.create ~cache () in
  (match Server.Engine.handle engine (parse_ok (solve_frame mapping_seed)) with
  | Protocol.Result _ -> ()
  | Protocol.Error { message; _ } -> Alcotest.failf "solve failed: %s" message);
  let files () =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cache")
  in
  let before = files () in
  Alcotest.(check bool) "entries persisted" true (List.length before > 0);
  (* lose the files behind the cache's back, as a crashed writer would *)
  List.iter (fun f -> Sys.remove (Filename.concat dir f)) before;
  Alcotest.(check (list string)) "gone" [] (files ());
  Cache.sync cache;
  Alcotest.(check (list string)) "sync restores every completed entry"
    (List.sort compare before)
    (List.sort compare (files ()))

(* --- end to end over a real socket --------------------------------------- *)

let test_socket_round_trip () =
  let path = Filename.temp_file "serve_e2e" ".sock" in
  Sys.remove path;
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Server.Daemon.serve ~stop
          ~on_ready:(fun _ -> Atomic.set ready true)
          {
            Server.Daemon.endpoint = `Unix_socket path;
            jobs = 2;
            queue = 32;
            batch = 16;
            deadline_ms = None;
          })
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc {|{"id":"p","method":"ping"}|};
  output_string oc "\n";
  output_string oc (solve_frame ~id:"s1" mapping_seed);
  output_string oc "\n";
  output_string oc (solve_frame ~id:"s2" mapping_seed);
  output_string oc "\n";
  flush oc;
  let lines = List.init 3 (fun _ -> input_line ic) in
  let by_id id =
    match
      List.find_opt
        (fun l ->
          match Json.parse_line l with
          | Ok j -> Json.member "id" j = Some (Json.Str id)
          | Error _ -> false)
        lines
    with
    | Some l -> l
    | None -> Alcotest.failf "no response for %s" id
  in
  Alcotest.(check string) "pong" {|{"id":"p","result":{"pong":true}}|} (by_id "p");
  let body l =
    match Json.parse_line l with
    | Ok j -> Json.to_string (Option.get (Json.member "result" j))
    | Error _ -> Alcotest.failf "bad frame %s" l
  in
  Alcotest.(check string) "identical duplicate bodies" (body (by_id "s1"))
    (body (by_id "s2"));
  Atomic.set stop true;
  Domain.join daemon;
  Unix.close fd;
  Alcotest.(check bool) "socket unlinked on shutdown" false (Sys.file_exists path)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "parses ping" `Quick test_parse_ping;
          Alcotest.test_case "parses solve" `Quick test_parse_solve;
          Alcotest.test_case "typed rejections" `Quick test_parse_rejections;
          Alcotest.test_case "errors echo the id" `Quick test_error_id_echo;
          Alcotest.test_case "solve_key is content-keyed" `Quick test_solve_key;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "sheds at capacity, drains FIFO" `Quick
            test_batcher_sheds_and_preserves_order;
        ] );
      ( "engine",
        [
          Alcotest.test_case "bit-identical responses" `Quick
            test_engine_deterministic;
          Alcotest.test_case "typed errors" `Quick test_engine_typed_errors;
        ] );
      ( "coalescing",
        [
          Alcotest.test_case "identical batch, jobs 1" `Quick
            test_coalescing_jobs1;
          Alcotest.test_case "identical batch, jobs 4" `Quick
            test_coalescing_jobs4;
          Alcotest.test_case "cache single-flight accounting" `Quick
            test_selection_single_flight;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "expired jobs answered without solving" `Quick
            test_deadline_expired_jobs_not_solved;
        ] );
      ( "sync",
        [
          Alcotest.test_case "Cache.sync repairs lost disk files" `Quick
            test_cache_sync_repairs_disk_tier;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "socket round trip and graceful stop" `Quick
            test_socket_round_trip;
        ] );
    ]
