(* Util.Json parse-error positions and NDJSON framing.

   The server satellite of the JSON layer: every rejected input must name
   the line and column where parsing stopped (property-tested over random
   mutations of valid documents and over raw garbage), and parse_line
   must enforce one-frame-per-line framing. *)

module Json = Util.Json

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let check_positioned input =
  match Json.parse input with
  | Ok _ -> true
  | Error e ->
    (* positions are 1-based and inside the input (column may point one
       past the end for truncation errors) *)
    let lines = String.split_on_char '\n' input in
    e.Json.line >= 1
    && e.Json.line <= List.length lines
    && e.Json.column >= 1
    && e.Json.column <= String.length (List.nth lines (e.Json.line - 1)) + 1
    && e.Json.offset >= 0
    && e.Json.offset <= String.length input
    && e.Json.message <> ""

(* random garbage: anything goes, the parser must still position errors *)
let prop_garbage =
  QCheck.Test.make ~name:"rejected garbage names a position" ~count:1000
    QCheck.(string_of_size Gen.(0 -- 40))
    check_positioned

(* mutations of a valid document: flip one byte, positions must hold *)
let base_doc =
  {|{"kernels": [{"name": "flip", "ns": 12.5}], "ok": true, "n": null,
 "nested": {"a": [1, 2, 3], "b": "x\ny"}}|}

let prop_mutated =
  QCheck.Test.make ~name:"rejected mutations name a position" ~count:1000
    QCheck.(pair (int_bound (String.length base_doc - 1)) char)
    (fun (pos, c) ->
      let b = Bytes.of_string base_doc in
      Bytes.set b pos c;
      check_positioned (Bytes.to_string b))

let test_position_values () =
  (match Json.parse "{\n  \"a\": 1,\n  \"b\": nul\n}" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
    Alcotest.(check int) "line of the bad literal" 3 e.Json.line;
    Alcotest.(check int) "column of the bad literal" 8 e.Json.column);
  match Json.parse "[1, 2" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> Alcotest.(check int) "truncation is on line 1" 1 e.Json.line

let test_pp_error_mentions_position () =
  match Json.parse "???" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
    let rendered = Format.asprintf "%a" Json.pp_error e in
    Alcotest.(check bool) "pp_error names line and column" true
      (contains ~affix:"line 1" rendered && contains ~affix:"column 1" rendered)

(* --- NDJSON framing ------------------------------------------------------ *)

let test_parse_line_accepts_trailing_newline () =
  (match Json.parse_line "{\"a\": 1}\n" with
  | Ok j -> Alcotest.(check bool) "value" true (j = Json.Obj [ ("a", Json.Num 1.) ])
  | Error e -> Alcotest.failf "rejected: %a" Json.pp_error e);
  match Json.parse_line "{\"a\": 1}\r\n" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "CRLF rejected: %a" Json.pp_error e

let test_parse_line_rejects_embedded_newline () =
  match Json.parse_line "{\"a\":\n 1}" with
  | Ok _ -> Alcotest.fail "embedded newline must be rejected"
  | Error e ->
    Alcotest.(check bool) "message names the framing rule" true
      (contains ~affix:"NDJSON" e.Json.message)

let test_parse_line_rejects_blank () =
  (match Json.parse_line "" with
  | Ok _ -> Alcotest.fail "empty frame must be rejected"
  | Error _ -> ());
  match Json.parse_line "   \n" with
  | Ok _ -> Alcotest.fail "blank frame must be rejected"
  | Error _ -> ()

let prop_parse_line_agrees_with_parse =
  (* on newline-free inputs, framing must not change the verdict *)
  QCheck.Test.make ~name:"parse_line = parse on newline-free input" ~count:500
    QCheck.(string_of_size Gen.(1 -- 30))
    (fun s ->
      let s = String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s in
      if String.trim s = "" then true
      else
        match (Json.parse s, Json.parse_line (s ^ "\n")) with
        | Ok a, Ok b -> a = b
        | Error _, Error _ -> true
        | _ -> false)

let () =
  Alcotest.run "json"
    [
      ( "positions",
        [
          QCheck_alcotest.to_alcotest prop_garbage;
          QCheck_alcotest.to_alcotest prop_mutated;
          Alcotest.test_case "exact line/column values" `Quick
            test_position_values;
          Alcotest.test_case "pp_error mentions the position" `Quick
            test_pp_error_mentions_position;
        ] );
      ( "framing",
        [
          Alcotest.test_case "trailing newline accepted" `Quick
            test_parse_line_accepts_trailing_newline;
          Alcotest.test_case "embedded newline rejected" `Quick
            test_parse_line_rejects_embedded_newline;
          Alcotest.test_case "blank frames rejected" `Quick
            test_parse_line_rejects_blank;
          QCheck_alcotest.to_alcotest prop_parse_line_agrees_with_parse;
        ] );
    ]
