(* Warm-started CMD solves, the portfolio race, and the experiments' solver
   context (Ctx): the bit-identity and determinism contracts the sweep
   machinery and `--solver portfolio` rely on. *)

open Core

(* --- warm-start bit-identity -------------------------------------------- *)

let warm_equals_cold_tests =
  let open QCheck2 in
  [
    Test.make ~name:"warm-started solve equals cold" ~count:30
      Fixtures.selection_problem_gen (fun p ->
        let cold = Cmd.solve p in
        let warm = Cmd.solve ~warm:cold.Cmd.warm_out p in
        warm.Cmd.selection = cold.Cmd.selection);
    Test.make ~name:"warm state transported to a shrunk problem equals cold"
      ~count:20 Fixtures.selection_problem_gen (fun p ->
        let m = Problem.num_candidates p in
        if m < 2 then true
        else
          let cold = Cmd.solve p in
          let q =
            Problem.make ~source:Fixtures.instance_i ~j:Fixtures.instance_j
              [ Fixtures.theta1 ]
          in
          (* a structurally unrelated neighbour: the delta is partial, so
             Cmd must fall back to the cold start rather than risk a
             different ADMM optimum *)
          let q_cold = Cmd.solve q in
          let q_warm = Cmd.solve ~warm:cold.Cmd.warm_out q in
          q_warm.Cmd.selection = q_cold.Cmd.selection);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let appendix_problem () =
  Problem.make ~source:Fixtures.instance_i ~j:Fixtures.instance_j
    [ Fixtures.theta1; Fixtures.theta3 ]

let test_zero_warm_state_is_cold () =
  (* an all-zero warm state is exactly the historical cold start *)
  let p = appendix_problem () in
  let cold = Cmd.solve p in
  let zeroed =
    {
      cold.Cmd.warm_out with
      Cmd.state =
        {
          Psl.Admm.consensus =
            Array.map (fun _ -> 0.)
              cold.Cmd.warm_out.Cmd.state.Psl.Admm.consensus;
          duals =
            Array.map
              (Array.map (fun _ -> 0.))
              cold.Cmd.warm_out.Cmd.state.Psl.Admm.duals;
        };
    }
  in
  let warm = Cmd.solve ~warm:zeroed p in
  Alcotest.(check (array bool))
    "selection identical" cold.Cmd.selection warm.Cmd.selection;
  Alcotest.(check int)
    "same iteration count (bit-identical trajectory)"
    cold.Cmd.admm.Psl.Admm.iterations warm.Cmd.admm.Psl.Admm.iterations

(* --- Grounding.delta / transport ---------------------------------------- *)

let test_delta_identity () =
  let p = appendix_problem () in
  let cold = Cmd.solve p in
  (* the model the state was captured on — Cmd.solve grounds the
     preprocessed problem, so build_model on [p] would be a different
     (larger) model *)
  let model = cold.Cmd.warm_out.Cmd.model in
  let d = Psl.Grounding.delta ~prev:model ~next:model in
  Alcotest.(check int)
    "every variable matched by name" (Psl.Hlmrf.num_vars model)
    d.Psl.Grounding.matched_vars;
  Alcotest.(check int)
    "every factor matched by signature"
    (List.length (Psl.Admm.factor_views model))
    d.Psl.Grounding.matched_factors;
  Array.iteri
    (fun i j -> Alcotest.(check int) "var maps to itself" i j)
    d.Psl.Grounding.var_map;
  let s = cold.Cmd.warm_out.Cmd.state in
  let t = Psl.Grounding.transport d s in
  Alcotest.(check (array (float 1e-12)))
    "consensus round-trips" s.Psl.Admm.consensus t.Psl.Admm.consensus;
  Array.iteri
    (fun i row ->
      Alcotest.(check (array (float 1e-12)))
        (Printf.sprintf "dual row %d round-trips" i)
        row
        t.Psl.Admm.duals.(i))
    s.Psl.Admm.duals

let test_delta_neighbour () =
  (* dropping a candidate: the surviving candidate's variable and the
     shared explained-atoms still match by name; transported state keeps
     their values and zero-fills the rest *)
  let p = appendix_problem () in
  let q =
    Problem.make ~source:Fixtures.instance_i ~j:Fixtures.instance_j
      [ Fixtures.theta1 ]
  in
  let mp = Cmd.build_model p and mq = Cmd.build_model q in
  let d = Psl.Grounding.delta ~prev:mp ~next:mq in
  Alcotest.(check bool)
    "some variables matched" true
    (d.Psl.Grounding.matched_vars > 0);
  Alcotest.(check int)
    "shapes follow the next model" (Psl.Hlmrf.num_vars mq)
    d.Psl.Grounding.next_num_vars;
  Array.iter
    (fun j ->
      Alcotest.(check bool)
        "var_map entries in prev range" true
        (j = -1 || (j >= 0 && j < Psl.Hlmrf.num_vars mp)))
    d.Psl.Grounding.var_map;
  let s = (Cmd.solve p).Cmd.warm_out.Cmd.state in
  let t = Psl.Grounding.transport d s in
  Alcotest.(check int)
    "transported consensus has next's length" (Psl.Hlmrf.num_vars mq)
    (Array.length t.Psl.Admm.consensus);
  Alcotest.(check int)
    "transported duals have next's factor count"
    (List.length (Psl.Admm.factor_views mq))
    (Array.length t.Psl.Admm.duals)

(* --- portfolio ----------------------------------------------------------- *)

let roster_names = [ "cmd"; "exact"; "greedy"; "local"; "anneal" ]

let objective_of name ~seed p =
  let impl = Option.get (Solver.find name) in
  match Solver.solve impl ~seed p with
  | o -> Some (Objective.value p o.Solver.selection)
  | exception Solver_error.Error _ -> None

let portfolio_tests =
  let open QCheck2 in
  [
    Test.make ~name:"portfolio equals the best of its roster" ~count:25
      Fixtures.selection_problem_gen (fun p ->
        let seed = 5 in
        match List.filter_map (fun n -> objective_of n ~seed p) roster_names with
        | [] -> false (* greedy never refuses *)
        | o :: rest -> (
          let best = List.fold_left Util.Frac.min o rest in
          match objective_of "portfolio" ~seed p with
          | None -> false
          | Some v -> Util.Frac.equal v best));
    Test.make ~name:"portfolio is deterministic and pool-invariant" ~count:15
      Fixtures.selection_problem_gen (fun p ->
        let impl = Option.get (Solver.find "portfolio") in
        let seq = (Solver.solve impl ~seed:9 p).Solver.selection in
        let again = (Solver.solve impl ~seed:9 p).Solver.selection in
        let pooled =
          Parallel.Pool.with_pool ~jobs:4 (fun pool ->
              (Solver.solve impl ~pool ~seed:9 p).Solver.selection)
        in
        seq = again && seq = pooled);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let test_portfolio_all_refuse () =
  (* a roster whose every entry raises must surface a typed error *)
  let refuse name =
    {
      Portfolio.r_name = name;
      r_solve =
        (fun ?pool:_ ?seed:_ _ -> Solver_error.raise_ ~solver:name "refused");
      r_exact = false;
    }
  in
  let p = appendix_problem () in
  Alcotest.(check bool)
    "raises Solver_error for the portfolio itself" true
    (match Portfolio.race ~roster:[ refuse "a"; refuse "b" ] p with
    | exception Solver_error.Error { solver = "portfolio"; _ } -> true
    | _ -> false)

(* --- the solver context -------------------------------------------------- *)

let test_ctx_shutdown_idempotent () =
  let ctx = Experiments.Common.Ctx.create ~jobs:2 () in
  ignore (Experiments.Common.Ctx.pool ctx);
  Experiments.Common.Ctx.shutdown ctx;
  (* the old set_jobs accessor double-shut the shared pool here *)
  Experiments.Common.Ctx.shutdown ctx;
  Alcotest.(check bool)
    "pool after shutdown is refused" true
    (match Experiments.Common.Ctx.pool ctx with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_ctx_concurrent_shutdown () =
  let ctx = Experiments.Common.Ctx.create ~jobs:2 () in
  ignore (Experiments.Common.Ctx.pool ctx);
  let racers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> Experiments.Common.Ctx.shutdown ctx))
  in
  List.iter Domain.join racers;
  Alcotest.(check bool)
    "all four shutdowns returned" true true

let test_ctx_warm_chain_equals_cold () =
  (* the sweep path end-to-end: even under one shared key (every level
     offering its state to the next), run_solver must select exactly what
     cold solves do — Cmd only applies state on an exact model match *)
  let scenario level =
    Ibench.Generator.generate
      (Experiments.Common.noise_config ~seed:3 ~pi_corresp:0 ~pi_errors:level
         ~pi_unexplained:0 ())
  in
  let levels = [ 0; 25; 50 ] in
  let cold =
    Experiments.Common.Ctx.with_ctx ~jobs:1 (fun ctx ->
        List.map
          (fun level ->
            let s = scenario level in
            let p = Experiments.Common.problem_of_scenario ctx s in
            (Experiments.Common.run_solver ctx Experiments.Common.Cmd_solver s
               p)
              .Experiments.Common.selection)
          levels)
  in
  let warm =
    Experiments.Common.Ctx.with_ctx ~jobs:1 (fun ctx ->
        List.map
          (fun level ->
            let s = scenario level in
            let p = Experiments.Common.problem_of_scenario ctx s in
            (Experiments.Common.run_solver ctx ~warm_key:"chain"
               Experiments.Common.Cmd_solver s p)
              .Experiments.Common.selection)
          levels)
  in
  List.iteri
    (fun i (c, w) ->
      Alcotest.(check (array bool))
        (Printf.sprintf "level %d identical" (List.nth levels i))
        c w)
    (List.combine cold warm)

let test_ctx_reserved_point_identity () =
  (* re-serving one sweep point under a cached context: the second pass is
     answered from the selection tier (and would otherwise warm-start from
     the point's own fixed point); both passes must match a cold solve *)
  let s =
    Ibench.Generator.generate
      (Experiments.Common.noise_config ~seed:7 ~pi_corresp:0 ~pi_errors:25
         ~pi_unexplained:0 ())
  in
  let cold =
    Experiments.Common.Ctx.with_ctx ~jobs:1 (fun ctx ->
        let p = Experiments.Common.problem_of_scenario ctx s in
        (Experiments.Common.run_solver ctx Experiments.Common.Cmd_solver s p)
          .Experiments.Common.selection)
  in
  Experiments.Common.Ctx.with_ctx ~cache:(Cache.create ()) ~jobs:1 (fun ctx ->
      let solve () =
        let p = Experiments.Common.problem_of_scenario ctx s in
        (Experiments.Common.run_solver ctx ~warm_key:"pt"
           Experiments.Common.Cmd_solver s p)
          .Experiments.Common.selection
      in
      let first = solve () in
      let again = solve () in
      Alcotest.(check (array bool)) "pass 1 equals cold" cold first;
      Alcotest.(check (array bool)) "re-served pass equals cold" cold again)

let test_ctx_warm_store () =
  let ctx = Experiments.Common.Ctx.create ~jobs:1 () in
  let p = appendix_problem () in
  let w = (Cmd.solve p).Cmd.warm_out in
  Alcotest.(check bool)
    "empty store" true
    (Experiments.Common.Ctx.warm_find ctx "k" = None);
  Experiments.Common.Ctx.warm_set ctx "k" w;
  Alcotest.(check bool)
    "stored" true
    (Experiments.Common.Ctx.warm_find ctx "k" <> None);
  Experiments.Common.Ctx.warm_clear ctx;
  Alcotest.(check bool)
    "cleared" true
    (Experiments.Common.Ctx.warm_find ctx "k" = None)

let () =
  Alcotest.run "cmd"
    [
      ( "warm-start",
        warm_equals_cold_tests
        @ [
            Alcotest.test_case "zero warm state is the cold start" `Quick
              test_zero_warm_state_is_cold;
            Alcotest.test_case "delta on the identical model is total" `Quick
              test_delta_identity;
            Alcotest.test_case "delta transports across a dropped candidate"
              `Quick test_delta_neighbour;
          ] );
      ( "portfolio",
        portfolio_tests
        @ [
            Alcotest.test_case "an all-refusing roster raises" `Quick
              test_portfolio_all_refuse;
          ] );
      ( "ctx",
        [
          Alcotest.test_case "shutdown is idempotent" `Quick
            test_ctx_shutdown_idempotent;
          Alcotest.test_case "concurrent shutdowns race safely" `Quick
            test_ctx_concurrent_shutdown;
          Alcotest.test_case "warm chain equals cold through run_solver"
            `Quick test_ctx_warm_chain_equals_cold;
          Alcotest.test_case "re-served point equals cold" `Quick
            test_ctx_reserved_point_identity;
          Alcotest.test_case "warm store round-trips" `Quick
            test_ctx_warm_store;
        ] );
    ]
