(* The telemetry layer's contract, tested from the outside:

   1. observation never changes results — every solver in the Core.Solver
      registry returns a bit-identical selection with telemetry enabled
      (no-op sink) and disabled;
   2. counter totals and span counts are a pure function of the workload,
      not of the pool size — a fuzz campaign traced with 1 worker and with
      4 workers writes JSONL that aggregates to the same totals;
   3. the primitives themselves behave: counters are monotone and
      registration is idempotent, spans nest and survive exceptions,
      [reset] zeroes values but keeps registrations.

   Telemetry state is global, so every test leaves it disabled with all
   sinks detached. *)

open Core

let with_telemetry ~enabled f =
  Telemetry.reset ();
  Telemetry.set_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_enabled false;
      Telemetry.set_human None;
      Telemetry.set_jsonl None;
      Telemetry.reset ())
    f

(* --- primitives -------------------------------------------------------- *)

let unit_tests =
  [
    Alcotest.test_case "counters count only when enabled" `Quick (fun () ->
        with_telemetry ~enabled:false (fun () ->
            let c = Telemetry.Counter.make "test.unit_counter" in
            Telemetry.Counter.incr c;
            Telemetry.Counter.add c 10;
            Alcotest.(check int) "disabled: untouched" 0
              (Telemetry.Counter.value c);
            Telemetry.set_enabled true;
            Telemetry.Counter.incr c;
            Telemetry.Counter.add c 10;
            Telemetry.Counter.add c (-5);
            Alcotest.(check int) "enabled: monotone" 11
              (Telemetry.Counter.value c)));
    Alcotest.test_case "make is idempotent per name" `Quick (fun () ->
        with_telemetry ~enabled:true (fun () ->
            let a = Telemetry.Counter.make "test.same" in
            let b = Telemetry.Counter.make "test.same" in
            Telemetry.Counter.incr a;
            Telemetry.Counter.incr b;
            Alcotest.(check int) "one cell" 2 (Telemetry.Counter.value a)));
    Alcotest.test_case "reset zeroes values, keeps registrations" `Quick
      (fun () ->
        with_telemetry ~enabled:true (fun () ->
            let c = Telemetry.Counter.make "test.reset_me" in
            Telemetry.Counter.add c 3;
            Telemetry.with_span "test.reset_span" ignore;
            Telemetry.reset ();
            Telemetry.set_enabled true;
            Alcotest.(check int) "zeroed" 0 (Telemetry.Counter.value c);
            Alcotest.(check bool)
              "still listed" true
              (List.mem_assoc "test.reset_me" (Telemetry.counters ()));
            Alcotest.(check (list (pair string int)))
              "span aggregates cleared" []
              (Telemetry.span_counts ())));
    Alcotest.test_case "spans nest and survive exceptions" `Quick (fun () ->
        with_telemetry ~enabled:true (fun () ->
            (try
               Telemetry.with_span "test.outer" (fun () ->
                   Telemetry.with_span "test.inner" ignore;
                   Telemetry.with_span "test.inner" ignore;
                   failwith "boom")
             with Failure _ -> ());
            (* the raising span still closed, so a fresh one nests at
               depth 0 again rather than under a leaked parent *)
            Telemetry.with_span "test.outer" ignore;
            Alcotest.(check (list (pair string int)))
              "span counts" [ ("test.inner", 2); ("test.outer", 2) ]
              (Telemetry.span_counts ())));
    Alcotest.test_case "disabled spans record nothing" `Quick (fun () ->
        with_telemetry ~enabled:false (fun () ->
            Telemetry.with_span "test.ghost" ignore;
            Alcotest.(check (list (pair string int)))
              "empty" [] (Telemetry.span_counts ())));
    Alcotest.test_case "gauge reads back the last write" `Quick (fun () ->
        with_telemetry ~enabled:true (fun () ->
            let g = Telemetry.Gauge.make "test.gauge" in
            Alcotest.(check bool)
              "unset is nan" true
              (Float.is_nan (Telemetry.Gauge.value g));
            Telemetry.Gauge.set g 1.5;
            Telemetry.Gauge.set g 2.5;
            Alcotest.(check (float 0.0)) "last write" 2.5
              (Telemetry.Gauge.value g)));
  ]

(* --- observation never changes results --------------------------------- *)

(* Exercised per registered solver on random selection problems: the
   generator keeps problems tiny (≤ 6 candidates), so even [exact] is
   cheap and no solver needs a size guard here. *)
let transparency_tests =
  let open QCheck2 in
  List.map
    (fun impl ->
      let name = Solver.name impl in
      Test.make
        ~name:(Printf.sprintf "%s is bit-identical with telemetry on/off" name)
        ~count:
          (match name with "cmd" | "portfolio" -> 15 | _ -> 50)
        Fixtures.selection_problem_gen
        (fun p ->
          let off =
            with_telemetry ~enabled:false (fun () ->
                Solver.solve impl ~seed:3 p)
          in
          let on =
            with_telemetry ~enabled:true (fun () ->
                Solver.solve impl ~seed:3 p)
          in
          off = on))
    Solver.all
  |> List.map QCheck_alcotest.to_alcotest

(* --- jobs-invariant aggregation over JSONL ----------------------------- *)

(* Minimal extractors for the repo's own JSONL schema; no JSON library in
   the dependency cone, and these lines are machine-generated with known
   shapes. *)
let jsonl_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | exception End_of_file ->
      close_in ic;
      List.rev acc
    | line -> go (line :: acc)
  in
  go []

let counter_totals lines =
  List.filter_map
    (fun line ->
      try
        Some
          (Scanf.sscanf line {|{"type":"counter","name":%S,"value":%d}|}
             (fun n v -> (n, v)))
      with Scanf.Scan_failure _ | End_of_file -> None)
    lines
  |> List.sort compare

let span_counts_of lines =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun line ->
      match Scanf.sscanf line {|{"type":"span","name":%S|} Fun.id with
      | name ->
        Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name))
      | exception (Scanf.Scan_failure _ | End_of_file) -> ())
    lines;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let traced_campaign ~jobs path =
  with_telemetry ~enabled:true (fun () ->
      let oc = open_out path in
      Telemetry.set_jsonl (Some oc);
      let summary =
        Parallel.Pool.with_pool ~jobs (fun pool ->
            Fuzz.Driver.run ~pool ~oracles:Fuzz.Oracle.all ~seed:11 ~budget:15
              ())
      in
      Telemetry.flush ();
      Telemetry.set_jsonl None;
      close_out oc;
      summary)

let jobs_invariance_tests =
  [
    Alcotest.test_case "fuzz campaign traces aggregate identically for 1 and 4 jobs"
      `Slow (fun () ->
        let seq = Filename.temp_file "trace_seq" ".jsonl" in
        let par = Filename.temp_file "trace_par" ".jsonl" in
        Fun.protect
          ~finally:(fun () ->
            Sys.remove seq;
            Sys.remove par)
          (fun () ->
            let s1 = traced_campaign ~jobs:1 seq in
            let s4 = traced_campaign ~jobs:4 par in
            Alcotest.(check int)
              "campaign results identical" s1.Fuzz.Driver.passed
              s4.Fuzz.Driver.passed;
            let seq_lines = jsonl_lines seq and par_lines = jsonl_lines par in
            let nonzero totals = List.filter (fun (_, v) -> v <> 0) totals in
            Alcotest.(check (list (pair string int)))
              "counter totals" (counter_totals seq_lines)
              (counter_totals par_lines);
            Alcotest.(check (list (pair string int)))
              "span counts" (span_counts_of seq_lines)
              (span_counts_of par_lines);
            (* the campaign actually exercised the instrumented layers *)
            Alcotest.(check bool)
              "some counters moved" true
              (nonzero (counter_totals seq_lines) <> []);
            Alcotest.(check bool)
              "pool tasks counted" true
              (List.exists
                 (fun (n, v) -> String.equal n "pool.tasks" && v > 0)
                 (counter_totals seq_lines))));
  ]

let () =
  Alcotest.run "telemetry"
    [
      ("primitives", unit_tests);
      ("transparency", transparency_tests);
      ("jobs-invariance", jobs_invariance_tests);
    ]
