open Relational
open Logic

let v = Fixtures.v

let chase_appendix mapping = Chase.run Fixtures.instance_i mapping

let basic_tests =
  [
    Alcotest.test_case "theta1 produces two task tuples" `Quick (fun () ->
        let { Chase.solution; triggers } = chase_appendix [ Fixtures.theta1 ] in
        Alcotest.(check int) "2 tuples" 2 (Instance.cardinal solution);
        Alcotest.(check int) "2 triggers" 2 (List.length triggers);
        Alcotest.(check int)
          "2 nulls" 2
          (Value.Set.cardinal (Instance.null_labels solution)));
    Alcotest.test_case "theta3 produces task and org per trigger" `Quick
      (fun () ->
        let { Chase.solution; triggers } = chase_appendix [ Fixtures.theta3 ] in
        Alcotest.(check int) "4 tuples" 4 (Instance.cardinal solution);
        List.iter
          (fun (tr : Chase.Trigger.t) ->
            Alcotest.(check int) "2 tuples/trigger" 2 (List.length tr.tuples);
            Alcotest.(check int) "1 null/trigger" 1 (Value.Set.cardinal tr.nulls))
          triggers);
    Alcotest.test_case "joint chase keeps per-tgd nulls distinct" `Quick
      (fun () ->
        let { Chase.solution; _ } =
          chase_appendix [ Fixtures.theta1; Fixtures.theta3 ]
        in
        (* 2 task (theta1) + 2 task + 2 org (theta3); theta1 invents one null
           per trigger, theta3 one null shared by the task/org pair *)
        Alcotest.(check int) "6 tuples" 6 (Instance.cardinal solution);
        Alcotest.(check int)
          "4 nulls" 4
          (Value.Set.cardinal (Instance.null_labels solution)));
    Alcotest.test_case "full tgd invents no nulls" `Quick (fun () ->
        let full =
          Tgd.make
            ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
            ~head:[ Atom.make "org" [ v "P"; v "O" ] ]
            ()
        in
        let { Chase.solution; _ } = chase_appendix [ full ] in
        Alcotest.(check bool) "ground" true (Instance.is_ground solution));
    Alcotest.test_case "empty mapping yields empty solution" `Quick (fun () ->
        let { Chase.solution; triggers } = chase_appendix [] in
        Alcotest.(check bool) "empty" true (Instance.is_empty solution);
        Alcotest.(check int) "no triggers" 0 (List.length triggers));
    Alcotest.test_case "null source is respected" `Quick (fun () ->
        let nulls = Null_source.create ~first:100 () in
        let { Chase.solution; _ } =
          Chase.run ~nulls Fixtures.instance_i [ Fixtures.theta1 ]
        in
        Value.Set.iter
          (function
            | Value.Null n ->
              Alcotest.(check bool) "label >= 100" true (n >= 100)
            | Value.Const _ -> Alcotest.fail "unexpected constant")
          (Instance.null_labels solution));
    Alcotest.test_case "satisfies: chase result satisfies its tgds" `Quick
      (fun () ->
        let mapping = [ Fixtures.theta1; Fixtures.theta3 ] in
        let { Chase.solution; _ } = chase_appendix mapping in
        Alcotest.(check bool)
          "satisfied" true
          (Chase.satisfies_all ~source:Fixtures.instance_i ~target:solution
             mapping));
    Alcotest.test_case "satisfies: missing target tuple violates" `Quick
      (fun () ->
        Alcotest.(check bool)
          "violated" false
          (Chase.satisfies ~source:Fixtures.instance_i ~target:Instance.empty
             Fixtures.theta1));
    Alcotest.test_case "satisfies: J of the appendix violates theta1" `Quick
      (fun () ->
        (* J has no task tuple for the BigData project, so (I, J) does not
           satisfy theta1. *)
        Alcotest.(check bool)
          "violated" false
          (Chase.satisfies ~source:Fixtures.instance_i
             ~target:Fixtures.instance_j Fixtures.theta1));
  ]

(* Shapes the fuzzer's generator reaches but the appendix example does not:
   tgds with an empty frontier, repeated head atoms sharing existentials,
   and vacuously / trivially satisfied dependencies. *)
let edge_case_tests =
  [
    Alcotest.test_case "empty frontier: head disconnected from body" `Quick
      (fun () ->
        (* No body variable reaches the head, so every trigger invents a
           fresh pair of nulls unrelated to its homomorphism. *)
        let disconnected =
          Tgd.make
            ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
            ~head:[ Atom.make "org" [ v "X"; v "Y" ] ]
            ()
        in
        let ({ Chase.solution; triggers } as result) =
          chase_appendix [ disconnected ]
        in
        Alcotest.(check int) "one trigger per body hom" 2 (List.length triggers);
        Alcotest.(check int)
          "fresh null pair per trigger" 4
          (Value.Set.cardinal (Instance.null_labels solution));
        (match Chase.check_result ~source:Fixtures.instance_i result with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "check_result: %s" msg);
        (* Any target providing one org tuple satisfies it, because the
           existentials are free to map anywhere. *)
        Alcotest.(check bool)
          "one org tuple suffices" true
          (Chase.satisfies ~source:Fixtures.instance_i
             ~target:(Instance.of_tuples [ Tuple.of_consts "org" [ "a"; "b" ] ])
             disconnected);
        Alcotest.(check bool)
          "empty target violates" false
          (Chase.satisfies ~source:Fixtures.instance_i ~target:Instance.empty
             disconnected));
    Alcotest.test_case "repeated head atoms share their existential" `Quick
      (fun () ->
        let repeated =
          Tgd.make
            ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
            ~head:
              [
                Atom.make "org" [ v "T"; v "P" ]; Atom.make "org" [ v "T"; v "E" ];
              ]
            ()
        in
        let ({ Chase.triggers; _ } as result) = chase_appendix [ repeated ] in
        List.iter
          (fun (tr : Chase.Trigger.t) ->
            Alcotest.(check int) "two head tuples" 2 (List.length tr.tuples);
            Alcotest.(check int)
              "one shared null" 1
              (Value.Set.cardinal tr.nulls);
            (* both tuples carry the shared null in the first column *)
            List.iter
              (fun (t : Tuple.t) ->
                Alcotest.(check bool)
                  "null in first column" true
                  (Value.is_null t.Tuple.values.(0)))
              tr.tuples)
          triggers;
        match Chase.check_result ~source:Fixtures.instance_i result with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "check_result: %s" msg);
    Alcotest.test_case "identical duplicate head atoms collapse in solution"
      `Quick (fun () ->
        let dup =
          Tgd.make
            ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
            ~head:
              [
                Atom.make "org" [ v "X"; v "P" ]; Atom.make "org" [ v "X"; v "P" ];
              ]
            ()
        in
        let ({ Chase.solution; triggers } as result) = chase_appendix [ dup ] in
        (* each trigger lists both head atoms, but the instance dedups *)
        List.iter
          (fun (tr : Chase.Trigger.t) ->
            Alcotest.(check int) "two listed tuples" 2 (List.length tr.tuples))
          triggers;
        Alcotest.(check int) "two distinct tuples" 2 (Instance.cardinal solution);
        match Chase.check_result ~source:Fixtures.instance_i result with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "check_result: %s" msg);
    Alcotest.test_case "vacuous tgd: body relation absent from source" `Quick
      (fun () ->
        let vacuous =
          Tgd.make
            ~body:[ Atom.make "absent" [ v "A" ] ]
            ~head:[ Atom.make "org" [ v "A"; v "A" ] ]
            ()
        in
        let { Chase.solution; triggers } = chase_appendix [ vacuous ] in
        Alcotest.(check bool) "no tuples" true (Instance.is_empty solution);
        Alcotest.(check int) "no triggers" 0 (List.length triggers);
        (* vacuously satisfied by any target, even the empty one *)
        Alcotest.(check bool)
          "satisfied with empty target" true
          (Chase.satisfies ~source:Fixtures.instance_i ~target:Instance.empty
             vacuous));
    Alcotest.test_case "trivially-true tgds under Implication" `Quick (fun () ->
        (* A head that is a sub-conjunction of another's is implied… *)
        let strong =
          Tgd.make
            ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
            ~head:
              [
                Atom.make "task" [ v "P"; v "E"; v "T" ];
                Atom.make "org" [ v "T"; v "O" ];
              ]
            ()
        in
        let weak =
          Tgd.make
            ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
            ~head:[ Atom.make "org" [ v "T"; v "O" ] ]
            ()
        in
        Alcotest.(check bool) "head projection" true
          (Chase.Implication.implies strong weak);
        Alcotest.(check bool) "not conversely" false
          (Chase.Implication.implies weak strong);
        (* …a duplicated head atom changes nothing… *)
        let doubled =
          Tgd.make ~body:weak.Tgd.body ~head:(weak.Tgd.head @ weak.Tgd.head) ()
        in
        Alcotest.(check bool) "duplicate head equivalent" true
          (Chase.Implication.equivalent weak doubled);
        (* …and every tgd implies an existentially weakened copy of
           itself. *)
        let weakened =
          Tgd.make
            ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
            ~head:[ Atom.make "org" [ v "T"; v "U" ] ]
            ()
        in
        Alcotest.(check bool) "existential weakening" true
          (Chase.Implication.implies weak weakened));
  ]

(* Random full tgds over the r2/r3 source vocabulary, targeting t2/t3. *)
let full_tgd_gen =
  let open QCheck2.Gen in
  let* body = Fixtures.cq_gen in
  let vars =
    List.fold_left
      (fun acc a -> String_set.union acc (Atom.vars a))
      String_set.empty body
    |> String_set.elements
  in
  match vars with
  | [] -> return None
  | x :: _ ->
    let* y = oneofl vars in
    return
      (Some
         (Tgd.make
            ~body
            ~head:[ Atom.make "t2" [ Term.Var x; Term.Var y ] ]
            ()))

let property_tests =
  let open QCheck2 in
  [
    Test.make ~name:"chase solution satisfies the mapping" ~count:100
      (Gen.pair Fixtures.instance_gen full_tgd_gen) (fun (src, tgd) ->
        match tgd with
        | None -> true
        | Some tgd ->
          let { Chase.solution; _ } = Chase.run src [ tgd ] in
          Chase.satisfies ~source:src ~target:solution tgd);
    Test.make ~name:"one trigger per body answer" ~count:100
      (Gen.pair Fixtures.instance_gen full_tgd_gen) (fun (src, tgd) ->
        match tgd with
        | None -> true
        | Some tgd ->
          let { Chase.triggers; _ } = Chase.run src [ tgd ] in
          List.length triggers = List.length (Cq.answers src tgd.Tgd.body));
    Test.make ~name:"full tgds produce ground solutions" ~count:100
      (Gen.pair Fixtures.instance_gen full_tgd_gen) (fun (src, tgd) ->
        match tgd with
        | None -> true
        | Some tgd -> Instance.is_ground (Chase.universal_solution src [ tgd ]));
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* implication and certain-answer tests *)

let implication_tests =
  [
    Alcotest.test_case "theta3 implies theta1" `Quick (fun () ->
        Alcotest.(check bool)
          "implies" true
          (Chase.Implication.implies Fixtures.theta3 Fixtures.theta1));
    Alcotest.test_case "theta1 does not imply theta3" `Quick (fun () ->
        Alcotest.(check bool)
          "no" false
          (Chase.Implication.implies Fixtures.theta1 Fixtures.theta3));
    Alcotest.test_case "every tgd implies itself" `Quick (fun () ->
        List.iter
          (fun t ->
            Alcotest.(check bool) "self" true (Chase.Implication.implies t t))
          [ Fixtures.theta1; Fixtures.theta3 ]);
    Alcotest.test_case "redundant duplicate body atom is equivalent" `Quick
      (fun () ->
        let v = Fixtures.v in
        let doubled =
          Tgd.make
            ~body:
              [
                Atom.make "proj" [ v "P"; v "E"; v "O" ];
                Atom.make "proj" [ v "P"; v "E"; v "O2" ];
              ]
            ~head:[ Atom.make "task" [ v "P"; v "E"; v "T" ] ]
            ()
        in
        Alcotest.(check bool)
          "equivalent" true
          (Chase.Implication.equivalent Fixtures.theta1 doubled);
        Alcotest.(check bool)
          "but not renaming-equal" false
          (Tgd.equal_up_to_renaming Fixtures.theta1 doubled));
    Alcotest.test_case "implication respects constants" `Quick (fun () ->
        let v = Fixtures.v in
        let specific =
          Tgd.make
            ~body:[ Atom.make "proj" [ Term.Cst "ML"; v "E"; v "O" ] ]
            ~head:[ Atom.make "task" [ Term.Cst "ML"; v "E"; v "T" ] ]
            ()
        in
        (* the general rule implies the specific one, not vice versa *)
        Alcotest.(check bool)
          "general => specific" true
          (Chase.Implication.implies Fixtures.theta1 specific);
        Alcotest.(check bool)
          "specific !=> general" false
          (Chase.Implication.implies specific Fixtures.theta1));
    Alcotest.test_case "minimize drops the implied weaker candidate" `Quick
      (fun () ->
        (* theta3 implies theta1 but is larger, so minimize must keep both;
           a duplicate of theta1 (same size) is dropped *)
        let dup = Tgd.rename_apart ~suffix:"_d" Fixtures.theta1 in
        let kept =
          Chase.Implication.minimize [ Fixtures.theta1; Fixtures.theta3; dup ]
        in
        Alcotest.(check int) "two survive" 2 (List.length kept);
        Alcotest.(check bool)
          "theta3 kept" true
          (List.exists (Tgd.equal_up_to_renaming Fixtures.theta3) kept));
    Alcotest.test_case "minimize keeps incomparable candidates" `Quick
      (fun () ->
        let v = Fixtures.v in
        let other =
          Tgd.make
            ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
            ~head:[ Atom.make "org" [ v "T"; v "O" ] ]
            ()
        in
        Alcotest.(check int)
          "both kept" 2
          (List.length (Chase.Implication.minimize [ Fixtures.theta1; other ])));
    Alcotest.test_case "adversarial frozen-name constants are not captured"
      `Quick (fun () ->
        (* regression: freezing used to encode a frozen variable A as the
           constant "__frz_A_w", so a tgd that literally mentions that
           constant matched the frozen body and the constant-specific rule
           "implied" the universal one; freezing now uses nulls *)
        let v = Fixtures.v in
        let general =
          Tgd.make
            ~body:[ Atom.make "s0" [ v "A" ] ]
            ~head:[ Atom.make "u0" [ v "A" ] ]
            ()
        in
        let adversarial =
          Tgd.make
            ~body:[ Atom.make "s0" [ Term.Cst "__frz_A_w" ] ]
            ~head:[ Atom.make "u0" [ Term.Cst "__frz_A_w" ] ]
            ()
        in
        Alcotest.(check bool)
          "constant rule does not imply the universal rule" false
          (Chase.Implication.implies adversarial general);
        Alcotest.(check bool)
          "universal rule still implies the constant rule" true
          (Chase.Implication.implies general adversarial));
  ]

let certain_tests =
  let open Relational in
  let inst =
    Instance.of_tuples
      [
        Tuple.make "task" [ Value.Const "ML"; Value.Const "Alice"; Value.Null 0 ];
        Tuple.make "org" [ Value.Null 0; Value.Const "SAP" ];
        Tuple.of_consts "task" [ "Web"; "Bob"; "77" ];
      ]
  in
  let v = Fixtures.v in
  [
    Alcotest.test_case "null bindings are not certain" `Quick (fun () ->
        let q = [ Atom.make "task" [ v "P"; v "E"; v "I" ] ] in
        (* naive evaluation returns both tasks; only the ground one is a
           certain answer *)
        Alcotest.(check int) "naive 2" 2 (List.length (Cq.answers inst q));
        Alcotest.(check int) "certain 1" 1 (List.length (Chase.Certain.answers inst q)));
    Alcotest.test_case "projection past the null is certain" `Quick
      (fun () ->
        (* org(_N0, SAP): in every completion _N0 takes some value, so SAP
           is a certain answer of the projection on the name column *)
        let q2 = [ Atom.make "org" [ v "I"; v "N" ] ] in
        let names = Chase.Certain.answer_tuples inst q2 ~head:(Atom.make "ans" [ v "N" ]) in
        Alcotest.(check int) "one certain name" 1 (List.length names);
        (* both tasks project to certain (project, employee) pairs *)
        let q = [ Atom.make "task" [ v "P"; v "E"; v "I" ] ] in
        let pairs =
          Chase.Certain.answer_tuples inst q ~head:(Atom.make "ans" [ v "P"; v "E" ])
        in
        Alcotest.(check int) "two pairs" 2 (List.length pairs));
    Alcotest.test_case "boolean queries use naive evaluation" `Quick (fun () ->
        let q =
          [ Atom.make "task" [ v "P"; v "E"; v "I" ]; Atom.make "org" [ v "I"; v "N" ] ]
        in
        (* the join through the null witnesses the boolean query *)
        Alcotest.(check bool) "certain" true (Chase.Certain.is_certain inst q));
    Alcotest.test_case "unbound head variable rejected" `Quick (fun () ->
        let q = [ Atom.make "task" [ v "P"; v "E"; v "I" ] ] in
        Alcotest.(check bool)
          "raises" true
          (match
             Chase.Certain.answer_tuples inst q ~head:(Atom.make "ans" [ v "Z" ])
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Alcotest.test_case "answer_tuples deduplicates" `Quick (fun () ->
        let i2 =
          Instance.of_tuples
            [
              Tuple.of_consts "task" [ "A"; "x"; "1" ];
              Tuple.of_consts "task" [ "A"; "x"; "2" ];
            ]
        in
        let q = [ Atom.make "task" [ v "P"; v "E"; v "I" ] ] in
        let tuples =
          Chase.Certain.answer_tuples i2 q ~head:(Atom.make "ans" [ v "P"; v "E" ])
        in
        Alcotest.(check int) "one" 1 (List.length tuples));
  ]

let minimize_tgd_tests =
  [
    Alcotest.test_case "redundant body atom removed" `Quick (fun () ->
        let v = Fixtures.v in
        let bloated =
          Tgd.make ~label:"bloated"
            ~body:
              [
                Atom.make "proj" [ v "P"; v "E"; v "O" ];
                Atom.make "proj" [ v "P2"; v "E2"; v "O2" ];
              ]
            ~head:[ Atom.make "task" [ v "P"; v "E"; v "T" ] ]
            ()
        in
        let minimal = Chase.Implication.minimize_tgd bloated in
        Alcotest.(check int) "one body atom" 1 (List.length minimal.Tgd.body);
        Alcotest.(check bool)
          "equivalent to theta1" true
          (Chase.Implication.equivalent minimal Fixtures.theta1);
        Alcotest.(check int) "size shrinks" 3 (Tgd.size minimal));
    Alcotest.test_case "joined body atoms are kept" `Quick (fun () ->
        let v = Fixtures.v in
        let me =
          Tgd.make ~label:"me"
            ~body:
              [
                Atom.make "r2" [ v "X"; v "F" ];
                Atom.make "r3" [ v "F"; v "Y"; v "Z" ];
              ]
            ~head:[ Atom.make "t2" [ v "X"; v "Y" ] ]
            ()
        in
        let minimal = Chase.Implication.minimize_tgd me in
        Alcotest.(check int) "two body atoms" 2 (List.length minimal.Tgd.body));
    Alcotest.test_case "already minimal tgds are unchanged" `Quick (fun () ->
        let minimal = Chase.Implication.minimize_tgd Fixtures.theta3 in
        Alcotest.(check bool)
          "same" true
          (Tgd.equal_up_to_renaming minimal Fixtures.theta3));
    Alcotest.test_case "exactly one copy of a duplicated atom survives" `Quick
      (fun () ->
        (* regression: removal by physical equality could not shrink a
           body whose duplicate atoms share one allocation — dropping one
           dropped both, so the guard kept the redundant copy forever;
           removal is positional now *)
        let v = Fixtures.v in
        let a = Atom.make "r2" [ v "X"; v "Y" ] in
        let doubled =
          Tgd.make ~label:"doubled" ~body:[ a; a ]
            ~head:[ Atom.make "t2" [ v "X"; v "Y" ] ]
            ()
        in
        let minimal = Chase.Implication.minimize_tgd doubled in
        Alcotest.(check int) "one body atom" 1 (List.length minimal.Tgd.body);
        Alcotest.(check bool)
          "still equivalent" true
          (Chase.Implication.equivalent minimal doubled));
  ]

let egd_tests =
  let v = Fixtures.v in
  let schema = Schema.of_relations [ Relation.make "emp" [ "id"; "name"; "dept" ] ] in
  let key_egds = Chase.Egd.key ~rel:"emp" ~key:[ "id" ] schema in
  [
    Alcotest.test_case "key produces one egd per non-key attribute" `Quick
      (fun () -> Alcotest.(check int) "two" 2 (List.length key_egds));
    Alcotest.test_case "null merged with constant" `Quick (fun () ->
        let inst =
          Instance.of_tuples
            [
              Tuple.make "emp" [ Value.Const "1"; Value.Const "Ann"; Value.Null 0 ];
              Tuple.of_consts "emp" [ "1"; "Ann"; "Sales" ];
            ]
        in
        match Chase.Egd.chase inst key_egds with
        | Error c -> Alcotest.failf "unexpected conflict: %a" Chase.Egd.pp_conflict c
        | Ok fixed ->
          Alcotest.(check int) "merged to one tuple" 1 (Instance.cardinal fixed);
          Alcotest.(check bool) "ground" true (Instance.is_ground fixed);
          Alcotest.(check bool) "satisfied" true (Chase.Egd.satisfied fixed key_egds));
    Alcotest.test_case "two constants conflict" `Quick (fun () ->
        let inst =
          Instance.of_tuples
            [
              Tuple.of_consts "emp" [ "1"; "Ann"; "Sales" ];
              Tuple.of_consts "emp" [ "1"; "Ann"; "HR" ];
            ]
        in
        Alcotest.(check bool)
          "conflict" true
          (Result.is_error (Chase.Egd.chase inst key_egds)));
    Alcotest.test_case "null-null merge is deterministic" `Quick (fun () ->
        let inst =
          Instance.of_tuples
            [
              Tuple.make "emp" [ Value.Const "1"; Value.Const "Ann"; Value.Null 5 ];
              Tuple.make "emp" [ Value.Const "1"; Value.Const "Ann"; Value.Null 2 ];
            ]
        in
        match Chase.Egd.chase inst key_egds with
        | Error _ -> Alcotest.fail "no conflict expected"
        | Ok fixed ->
          Alcotest.(check int) "one tuple" 1 (Instance.cardinal fixed);
          (* the smaller label survives *)
          Alcotest.(check bool)
            "null 2 kept" true
            (Value.Set.mem (Value.Null 2) (Instance.null_labels fixed)));
    Alcotest.test_case "satisfied instance is returned unchanged" `Quick
      (fun () ->
        let inst =
          Instance.of_tuples
            [
              Tuple.of_consts "emp" [ "1"; "Ann"; "Sales" ];
              Tuple.of_consts "emp" [ "2"; "Bob"; "HR" ];
            ]
        in
        match Chase.Egd.chase inst key_egds with
        | Error _ -> Alcotest.fail "no conflict expected"
        | Ok fixed -> Alcotest.(check bool) "unchanged" true (Instance.equal inst fixed));
    Alcotest.test_case "make validates variables" `Quick (fun () ->
        Alcotest.(check bool)
          "unknown var rejected" true
          (match Chase.Egd.make ~body:[ Atom.make "r2" [ v "X"; v "Y" ] ] "X" "Z" with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Alcotest.test_case "tgd chase then egd chase keys the target" `Quick
      (fun () ->
        (* exchange the appendix source with theta3, then enforce that oid is
           a key of org: nothing to merge here, but the pipeline runs *)
        let solution = Chase.universal_solution Fixtures.instance_i [ Fixtures.theta3 ] in
        let org_schema = Schema.of_relations [ Relation.make "org" [ "oid"; "oname" ] ] in
        let egds = Chase.Egd.key ~rel:"org" ~key:[ "oid" ] org_schema in
        match Chase.Egd.chase solution egds with
        | Error _ -> Alcotest.fail "no conflict expected"
        | Ok fixed ->
          Alcotest.(check int)
            "same cardinality"
            (Instance.cardinal solution) (Instance.cardinal fixed));
  ]

let () =
  Alcotest.run "chase"
    [
      ("basic", basic_tests);
      ("edge-cases", edge_case_tests);
      ("properties", property_tests);
      ("implication", implication_tests);
      ("certain", certain_tests);
      ("minimize-tgd", minimize_tgd_tests);
      ("egd", egd_tests);
    ]
