open Relational
open Serialize

let appendix_doc =
  {
    Document.source = Fixtures.source_schema;
    target = Fixtures.target_schema;
    src_fkeys = [];
    tgt_fkeys = [ Candgen.Fkey.make ~from:("task", "oid") ~to_:("org", "oid") ];
    correspondences =
      [
        Candgen.Correspondence.make ~src:("proj", "pname") ~tgt:("task", "pname");
      ];
    tgds = [ Fixtures.theta1; Fixtures.theta3 ];
    instance_i = Fixtures.instance_i;
    instance_j = Fixtures.instance_j;
  }

let parse_ok text =
  match Parser.parse text with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let roundtrip_tests =
  [
    Alcotest.test_case "appendix document roundtrips" `Quick (fun () ->
        let doc = parse_ok (Document.to_string appendix_doc) in
        Alcotest.(check bool)
          "source schema" true
          (Schema.equal doc.Document.source appendix_doc.Document.source);
        Alcotest.(check bool)
          "target schema" true
          (Schema.equal doc.Document.target appendix_doc.Document.target);
        Alcotest.(check int)
          "fkeys" 1
          (List.length doc.Document.tgt_fkeys);
        Alcotest.(check int)
          "correspondences" 1
          (List.length doc.Document.correspondences);
        Alcotest.(check int) "tgds" 2 (List.length doc.Document.tgds);
        Alcotest.(check bool)
          "theta1" true
          (Logic.Tgd.equal_up_to_renaming (List.hd doc.Document.tgds) Fixtures.theta1);
        Alcotest.(check bool)
          "instance I" true
          (Instance.equal doc.Document.instance_i appendix_doc.Document.instance_i);
        Alcotest.(check bool)
          "instance J" true
          (Instance.equal doc.Document.instance_j appendix_doc.Document.instance_j));
    Alcotest.test_case "generated scenario roundtrips" `Quick (fun () ->
        let s = Ibench.Generator.generate Ibench.Config.default in
        let doc =
          {
            Document.source = s.Ibench.Scenario.source;
            target = s.Ibench.Scenario.target;
            src_fkeys = s.Ibench.Scenario.src_fkeys;
            tgt_fkeys = s.Ibench.Scenario.tgt_fkeys;
            correspondences = s.Ibench.Scenario.correspondences;
            tgds = s.Ibench.Scenario.candidates;
            instance_i = s.Ibench.Scenario.instance_i;
            instance_j = s.Ibench.Scenario.instance_j;
          }
        in
        let doc' = parse_ok (Document.to_string doc) in
        Alcotest.(check int)
          "tgds survive"
          (List.length doc.Document.tgds)
          (List.length doc'.Document.tgds);
        List.iter2
          (fun a b ->
            Alcotest.(check bool)
              "tgd preserved" true
              (Logic.Tgd.equal_up_to_renaming a b))
          doc.Document.tgds doc'.Document.tgds;
        Alcotest.(check bool)
          "I preserved" true
          (Instance.equal doc.Document.instance_i doc'.Document.instance_i);
        Alcotest.(check bool)
          "J preserved" true
          (Instance.equal doc.Document.instance_j doc'.Document.instance_j));
  ]

let parser_tests =
  [
    Alcotest.test_case "comments and blank lines ignored" `Quick (fun () ->
        let doc = parse_ok "# hello\n\n  \nsource relation r(a, b)\n" in
        Alcotest.(check int) "one relation" 1 (Schema.size doc.Document.source));
    Alcotest.test_case "unknown directive reports its line" `Quick (fun () ->
        match Parser.parse "source relation r(a)\nnonsense here\n" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error e -> Alcotest.(check int) "line 2" 2 e.Parser.line);
    Alcotest.test_case "tuple of unknown relation rejected" `Quick (fun () ->
        match Parser.parse "source tuple r(a)\n" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error e ->
          Alcotest.(check bool)
            "mentions r" true
            (String.length e.Parser.message > 0));
    Alcotest.test_case "arity mismatch rejected" `Quick (fun () ->
        match Parser.parse "source relation r(a, b)\nsource tuple r(x)\n" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error e -> Alcotest.(check int) "line 2" 2 e.Parser.line);
    Alcotest.test_case "tgd variable convention" `Quick (fun () ->
        match Parser.parse_tgd "t: r(X, c) -> s(X, Y)" with
        | Error m -> Alcotest.fail m
        | Ok tgd ->
          Alcotest.(check bool) "X is frontier" true
            (Logic.String_set.mem "X" (Logic.Tgd.frontier_vars tgd));
          Alcotest.(check bool) "Y is existential" true
            (Logic.String_set.mem "Y" (Logic.Tgd.existential_vars tgd));
          Alcotest.(check bool) "not full" false (Logic.Tgd.is_full tgd));
    Alcotest.test_case "underscore starts a variable" `Quick (fun () ->
        match Parser.parse_tgd "t: r(_x) -> s(_x)" with
        | Error m -> Alcotest.fail m
        | Ok tgd -> Alcotest.(check bool) "full" true (Logic.Tgd.is_full tgd));
    Alcotest.test_case "quoted constant spelling like a variable roundtrips"
      `Quick (fun () ->
        (* the escape hatch for constants the bare grammar would read as
           variables; Term.pp emits the quotes, parse_tgd strips them *)
        let adversarial =
          Logic.Tgd.make ~label:"t"
            ~body:[ Logic.Atom.make "r" [ Logic.Term.Cst "__frz_x" ] ]
            ~head:[ Logic.Atom.make "s" [ Logic.Term.Cst "__frz_x" ] ]
            ()
        in
        let printed = Format.asprintf "%a" Logic.Tgd.pp adversarial in
        (match Parser.parse_tgd printed with
        | Error m -> Alcotest.fail m
        | Ok tgd ->
          Alcotest.(check bool)
            "same tgd" true
            (Logic.Tgd.equal adversarial tgd));
        match Parser.parse_tgd "t: r(__frz_x) -> s(__frz_x)" with
        | Error m -> Alcotest.fail m
        | Ok bare ->
          Alcotest.(check bool)
            "bare spelling stays a variable" false
            (Logic.Tgd.equal adversarial bare));
    Alcotest.test_case "malformed tgd reports error" `Quick (fun () ->
        Alcotest.(check bool)
          "no arrow" true
          (Result.is_error (Parser.parse_tgd "t: r(X), s(X)"));
        Alcotest.(check bool)
          "bad atom" true
          (Result.is_error (Parser.parse_tgd "t: r(X -> s(X)")));
    Alcotest.test_case "multi-atom tgd with joins parses" `Quick (fun () ->
        match Parser.parse_tgd "me: a(X, F), b(F, Y) -> t(X, Y)" with
        | Error m -> Alcotest.fail m
        | Ok tgd ->
          Alcotest.(check int) "two body atoms" 2 (List.length tgd.Logic.Tgd.body);
          Alcotest.(check bool) "full" true (Logic.Tgd.is_full tgd));
    Alcotest.test_case "duplicate relation with same signature tolerated"
      `Quick (fun () ->
        let doc =
          parse_ok "source relation r(a)\nsource relation r(a)\n"
        in
        Alcotest.(check int) "one" 1 (Schema.size doc.Document.source));
    Alcotest.test_case "conflicting relation signature rejected" `Quick
      (fun () ->
        match Parser.parse "source relation r(a)\nsource relation r(a, b)\n" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error e -> Alcotest.(check int) "line 2" 2 e.Parser.line);
  ]

let split_tests =
  [
    Alcotest.test_case "split_on_substring" `Quick (fun () ->
        Alcotest.(check (list string))
          "basic" [ "a"; "b" ]
          (Str_split.split_on_substring "->" "a -> b");
        Alcotest.(check (list string))
          "none" [ "abc" ]
          (Str_split.split_on_substring "->" "abc");
        Alcotest.(check (list string))
          "multi" [ "a"; "b"; "c" ]
          (Str_split.split_on_substring "~>" "a ~> b ~> c"));
  ]

let file_tests =
  [
    Alcotest.test_case "save then parse_file roundtrips" `Quick (fun () ->
        let path = Filename.temp_file "repro_doc" ".txt" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Document.save path appendix_doc;
            match Parser.parse_file path with
            | Error e -> Alcotest.failf "%a" Parser.pp_error e
            | Ok doc ->
              Alcotest.(check int) "tgds" 2 (List.length doc.Document.tgds);
              Alcotest.(check bool)
                "I" true
                (Relational.Instance.equal doc.Document.instance_i
                   appendix_doc.Document.instance_i)));
    Alcotest.test_case "psl program save/parse_file roundtrips" `Quick
      (fun () ->
        let program =
          "predicate p/1\nrule r 1.0: p(X) -> p(X)\nobserve p(a) = 0.5\n"
        in
        let path = Filename.temp_file "repro_psl" ".psl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc program;
            close_out oc;
            match Psl.Program.parse_file path with
            | Error e -> Alcotest.failf "%a" Psl.Program.pp_error e
            | Ok p ->
              Alcotest.(check int) "one rule" 1 (List.length p.Psl.Program.rules)));
  ]

let () =
  Alcotest.run "serialize"
    [
      ("roundtrip", roundtrip_tests);
      ("parser", parser_tests);
      ("split", split_tests);
      ("files", file_tests);
    ]
